(** Uniform access to the twelve benchmarks of Table I, at several input
    scales, for the test-suite and the benchmark harness.

    Each instance builds a fresh working set per invocation (the kernels
    mutate their inputs) and reduces its result to a float fingerprint;
    the fingerprint of the serial elision is the correctness reference. *)

type size = Test | Small | Medium | Large

type instance = {
  bench_name : string;
  input_desc : string;  (** e.g. "n=30" — the Table I "Input" column *)
  tolerance : float;  (** relative fingerprint tolerance (0 = exact) *)
  make_thunk : (module Kernel_intf.RUNTIME) -> unit -> float;
      (** [make_thunk (module R)] instantiates the kernel for runtime [R];
          the resulting thunk must be executed inside [R.run] and returns
          the fingerprint. *)
}

val names : string list
(** The twelve benchmark names, Table I order. *)

val find : size -> string -> instance
(** Raises [Not_found] for unknown names. *)

val instances : size -> instance list

val reference : size -> string -> float
(** Fingerprint of the serial elision (memoised).  Must not be called
    while a runtime is active. *)

val matches : instance -> float -> float -> bool
(** [matches inst reference fingerprint] applies the instance's
    tolerance. *)
