(** Strassen matrix multiply: the seven half-size products are spawned as
    parallel tasks at every level above the cutoff; additions and the
    final quadrant combination are computed in the parent strand.
    Temporaries are pre-allocated per recursion step, mirroring the
    preallocation fix the paper applied to the original benchmark to keep
    memory management out of the measurement. *)

module Make (R : Kernel_intf.RUNTIME) = struct
  let cutoff = 64

  (* c ← a·b (c zeroed by the caller). *)
  let rec mult a b c =
    let n = c.Linalg.rows in
    if n <= cutoff || n mod 2 <> 0 then Linalg.matmul_add_naive a b c
    else begin
      let h = n / 2 in
      let a11, a12, a21, a22 = Linalg.quadrants a in
      let b11, b12, b21, b22 = Linalg.quadrants b in
      let c11, c12, c21, c22 = Linalg.quadrants c in
      let fresh () = Linalg.create h h in
      let m1 = fresh () and m2 = fresh () and m3 = fresh () in
      let m4 = fresh () and m5 = fresh () and m6 = fresh () in
      let m7 = fresh () in
      let product m left_op right_op =
        (* Build the two operand sums, then the recursive product. *)
        let l = left_op () and r = right_op () in
        mult l r m
      in
      let sum x y () =
        let t = Linalg.create h h in
        Linalg.add_into ~dst:t x y;
        t
      and diff x y () =
        let t = Linalg.create h h in
        Linalg.sub_into ~dst:t x y;
        t
      and just x () = x in
      R.scope (fun sc ->
          let spawned =
            [
              R.spawn sc (fun () -> product m1 (sum a11 a22) (sum b11 b22));
              R.spawn sc (fun () -> product m2 (sum a21 a22) (just b11));
              R.spawn sc (fun () -> product m3 (just a11) (diff b12 b22));
              R.spawn sc (fun () -> product m4 (just a22) (diff b21 b11));
              R.spawn sc (fun () -> product m5 (sum a11 a12) (just b22));
              R.spawn sc (fun () -> product m6 (diff a21 a11) (sum b11 b12));
            ]
          in
          product m7 (diff a12 a22) (sum b21 b22);
          R.sync sc;
          List.iter R.get spawned);
      (* c11 = m1 + m4 − m5 + m7; c12 = m3 + m5;
         c21 = m2 + m4;           c22 = m1 − m2 + m3 + m6 *)
      Linalg.add_into ~dst:c11 m1 m4;
      Linalg.sub_into ~dst:c11 c11 m5;
      Linalg.add_into ~dst:c11 c11 m7;
      Linalg.add_into ~dst:c12 m3 m5;
      Linalg.add_into ~dst:c21 m2 m4;
      Linalg.sub_into ~dst:c22 m1 m2;
      Linalg.add_into ~dst:c22 c22 m3;
      Linalg.add_into ~dst:c22 c22 m6
    end

  let run a b =
    let c = Linalg.create a.Linalg.rows b.Linalg.cols in
    mult a b c;
    c
end
