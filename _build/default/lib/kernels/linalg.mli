(** Dense matrix views for the divide-and-conquer linear-algebra kernels
    (matmul, rectmul, strassen, lu, cholesky).

    A view is a window into a shared row-major backing array with an
    explicit leading dimension, so quadrant decomposition never copies.
    All kernels operate on views; concurrent strands only ever write
    disjoint windows. *)

type t = private {
  data : float array;
  off : int;  (** index of element (0,0) in [data] *)
  ld : int;  (** leading dimension (row stride) *)
  rows : int;
  cols : int;
}

val create : int -> int -> t
(** Zero-initialised [rows × cols] matrix with a fresh backing array. *)

val init : int -> int -> (int -> int -> float) -> t
val copy : t -> t

val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit

val sub : t -> row:int -> col:int -> rows:int -> cols:int -> t
(** A window sharing the backing array; bounds-checked. *)

val quadrants : t -> t * t * t * t
(** [(a11, a12, a21, a22)] of an even-dimensioned matrix. *)

val fill : t -> float -> unit

val add_into : dst:t -> t -> t -> unit
(** dst ← x + y *)

val sub_into : dst:t -> t -> t -> unit
(** dst ← x − y *)

val accumulate : dst:t -> t -> unit
(** dst ← dst + x *)

val matmul_add_naive : t -> t -> t -> unit
(** [matmul_add_naive a b c]: c ← c + a·b, triple loop (ikj order). *)

val matmul_sub_naive : t -> t -> t -> unit
(** c ← c − a·b. *)

val transpose : t -> t
(** Fresh transposed copy. *)

val random : ?seed:int -> int -> int -> t
(** Entries uniform in [(-1, 1)], deterministic from [seed]. *)

val random_spd : ?seed:int -> int -> t
(** Symmetric positive-definite: Aᵀ·A/n + n·I on a random A — safe for
    unpivoted LU and Cholesky. *)

val max_abs_diff : t -> t -> float
val frobenius : t -> float
val checksum : t -> float
(** Position-weighted sum usable as an order-insensitive fingerprint. *)
