(** Recursive Fibonacci (Listing 1 of the paper).  The work per task is a
    single addition, making this the purest stress test of the runtime
    system itself — the paper calls it "a useful tool for measuring the
    performance of the runtime system". *)

module Make (R : Kernel_intf.RUNTIME) = struct
  let rec fib n =
    if n < 2 then n
    else
      R.scope (fun sc ->
          let a = R.spawn sc (fun () -> fib (n - 1)) in
          let b = fib (n - 2) in
          R.sync sc;
          R.get a + b)

  let run n = fib n
end

let rec serial n = if n < 2 then n else serial (n - 1) + serial (n - 2)

(** Number of spawn points [fib n] executes: one per internal call. *)
let rec spawn_count n = if n < 2 then 0 else 1 + spawn_count (n - 1) + spawn_count (n - 2)
