(** Common definitions for the benchmark kernels (Table I of the paper).

    Every kernel is a functor over the runtime interface, so the same
    source runs unchanged on the Nowa runtime, every baseline preset, and
    the serial elision (which doubles as the correctness reference). *)

module type RUNTIME = Nowa_runtime.Runtime_intf.S

(** Serial elision of each kernel = the kernel instantiated with
    {!Nowa_runtime.Serial_runtime}. *)
module Serial = Nowa_runtime.Serial_runtime
