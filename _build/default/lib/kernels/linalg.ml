type t = { data : float array; off : int; ld : int; rows : int; cols : int }

let create rows cols =
  { data = Array.make (rows * cols) 0.0; off = 0; ld = cols; rows; cols }

let get m i j = m.data.(m.off + (i * m.ld) + j)
let set m i j v = m.data.(m.off + (i * m.ld) + j) <- v

let init rows cols f =
  let m = create rows cols in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      set m i j (f i j)
    done
  done;
  m

let copy m = init m.rows m.cols (fun i j -> get m i j)

let sub m ~row ~col ~rows ~cols =
  if row < 0 || col < 0 || row + rows > m.rows || col + cols > m.cols then
    invalid_arg "Linalg.sub: window out of bounds";
  { m with off = m.off + (row * m.ld) + col; rows; cols }

let quadrants m =
  if m.rows mod 2 <> 0 || m.cols mod 2 <> 0 then
    invalid_arg "Linalg.quadrants: odd dimension";
  let hr = m.rows / 2 and hc = m.cols / 2 in
  ( sub m ~row:0 ~col:0 ~rows:hr ~cols:hc,
    sub m ~row:0 ~col:hc ~rows:hr ~cols:hc,
    sub m ~row:hr ~col:0 ~rows:hr ~cols:hc,
    sub m ~row:hr ~col:hc ~rows:hr ~cols:hc )

let fill m v =
  for i = 0 to m.rows - 1 do
    for j = 0 to m.cols - 1 do
      set m i j v
    done
  done

let binop_into ~dst op x y =
  assert (dst.rows = x.rows && dst.cols = x.cols);
  assert (x.rows = y.rows && x.cols = y.cols);
  for i = 0 to dst.rows - 1 do
    for j = 0 to dst.cols - 1 do
      set dst i j (op (get x i j) (get y i j))
    done
  done

let add_into ~dst x y = binop_into ~dst ( +. ) x y
let sub_into ~dst x y = binop_into ~dst ( -. ) x y

let accumulate ~dst x =
  assert (dst.rows = x.rows && dst.cols = x.cols);
  for i = 0 to dst.rows - 1 do
    for j = 0 to dst.cols - 1 do
      set dst i j (get dst i j +. get x i j)
    done
  done

let matmul_add_naive a b c =
  assert (a.cols = b.rows && c.rows = a.rows && c.cols = b.cols);
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = get a i k in
      if aik <> 0.0 then
        for j = 0 to b.cols - 1 do
          set c i j (get c i j +. (aik *. get b k j))
        done
    done
  done

let matmul_sub_naive a b c =
  assert (a.cols = b.rows && c.rows = a.rows && c.cols = b.cols);
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = get a i k in
      if aik <> 0.0 then
        for j = 0 to b.cols - 1 do
          set c i j (get c i j -. (aik *. get b k j))
        done
    done
  done

let transpose m = init m.cols m.rows (fun i j -> get m j i)

let random ?(seed = 42) rows cols =
  let rng = Nowa_util.Xoshiro.make ~seed in
  init rows cols (fun _ _ -> (2.0 *. Nowa_util.Xoshiro.float rng) -. 1.0)

let random_spd ?(seed = 42) n =
  let a = random ~seed n n in
  let s = create n n in
  (* s = aᵀ·a / n + n·I *)
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let acc = ref 0.0 in
      for k = 0 to n - 1 do
        acc := !acc +. (get a k i *. get a k j)
      done;
      set s i j ((!acc /. float_of_int n) +. if i = j then float_of_int n else 0.0)
    done
  done;
  s

let max_abs_diff x y =
  assert (x.rows = y.rows && x.cols = y.cols);
  let m = ref 0.0 in
  for i = 0 to x.rows - 1 do
    for j = 0 to x.cols - 1 do
      m := Float.max !m (Float.abs (get x i j -. get y i j))
    done
  done;
  !m

let frobenius x =
  let s = ref 0.0 in
  for i = 0 to x.rows - 1 do
    for j = 0 to x.cols - 1 do
      let v = get x i j in
      s := !s +. (v *. v)
    done
  done;
  sqrt !s

let checksum x =
  let s = ref 0.0 in
  for i = 0 to x.rows - 1 do
    for j = 0 to x.cols - 1 do
      s := !s +. (get x i j *. float_of_int (((i * 31) + j) mod 97))
    done
  done;
  !s
