(** Quadrature adaptive integration, after the Cilk/Fibril benchmark:
    integrate f(x) = (x² + 1)·x over [0, n] by recursive interval halving
    until the trapezoid estimate stabilises within the tolerance. *)

let f x = ((x *. x) +. 1.0) *. x

(** Closed form of the integral of [f] over [0, b], for validation. *)
let exact b = ((b ** 4.0) /. 4.0) +. ((b *. b) /. 2.0)

module Make (R : Kernel_intf.RUNTIME) = struct
  let rec area ~epsilon x1 y1 x2 y2 estimate =
    let half = (x2 -. x1) /. 2.0 in
    let x0 = x1 +. half in
    let y0 = f x0 in
    let a1 = (y1 +. y0) /. 2.0 *. half in
    let a2 = (y0 +. y2) /. 2.0 *. half in
    let refined = a1 +. a2 in
    if Float.abs (refined -. estimate) < epsilon then refined
    else
      R.scope (fun sc ->
          let left = R.spawn sc (fun () -> area ~epsilon x1 y1 x0 y0 a1) in
          let right = area ~epsilon x0 y0 x2 y2 a2 in
          R.sync sc;
          R.get left +. right)

  let run ?(epsilon = 1e-9) n =
    let b = float_of_int n in
    area ~epsilon 0.0 (f 0.0) b (f b) 0.0
end
