(** Recursive blocked LU decomposition without pivoting (the Cilk [lu]
    benchmark): A is factored in place into a unit-lower L and upper U.
    Inputs must be factorisable unpivoted (the registry feeds it
    diagonally dominant SPD matrices).

    Recursion on quadrants:  A11 = L11·U11;  U12 = L11⁻¹·A12;
    L21 = A21·U11⁻¹;  A22 ← A22 − L21·U12;  recurse on A22.
    The two triangular solves run in parallel; the Schur update uses the
    parallel rectangular multiply. *)

module Make (R : Kernel_intf.RUNTIME) = struct
  let base = 32

  module Rect = Rectmul.Make (R)

  let lu_base a =
    let n = a.Linalg.rows in
    for k = 0 to n - 1 do
      let pivot = Linalg.get a k k in
      for i = k + 1 to n - 1 do
        let lik = Linalg.get a i k /. pivot in
        Linalg.set a i k lik;
        for j = k + 1 to n - 1 do
          Linalg.set a i j (Linalg.get a i j -. (lik *. Linalg.get a k j))
        done
      done
    done

  (* Solve L·X = B in place in [b]; [l] unit lower triangular.  Column
     blocks of [b] are independent and split in parallel; the row
     recursion is the dependent direction. *)
  let rec lower_solve l b =
    let n = l.Linalg.rows and cols = b.Linalg.cols in
    if cols > base then begin
      let h = cols / 2 in
      let b_left = Linalg.sub b ~row:0 ~col:0 ~rows:n ~cols:h
      and b_right = Linalg.sub b ~row:0 ~col:h ~rows:n ~cols:(cols - h) in
      R.scope (fun sc ->
          let left = R.spawn sc (fun () -> lower_solve l b_left) in
          lower_solve l b_right;
          R.sync sc;
          R.get left)
    end
    else if n <= base then
      (* Forward substitution with the unit diagonal. *)
      for j = 0 to cols - 1 do
        for i = 0 to n - 1 do
          let acc = ref (Linalg.get b i j) in
          for k = 0 to i - 1 do
            acc := !acc -. (Linalg.get l i k *. Linalg.get b k j)
          done;
          Linalg.set b i j !acc
        done
      done
    else begin
      let h = n / 2 in
      let l11 = Linalg.sub l ~row:0 ~col:0 ~rows:h ~cols:h
      and l21 = Linalg.sub l ~row:h ~col:0 ~rows:(n - h) ~cols:h
      and l22 = Linalg.sub l ~row:h ~col:h ~rows:(n - h) ~cols:(n - h) in
      let b_top = Linalg.sub b ~row:0 ~col:0 ~rows:h ~cols:cols
      and b_bot = Linalg.sub b ~row:h ~col:0 ~rows:(n - h) ~cols:cols in
      lower_solve l11 b_top;
      Rect.mult_sub l21 b_top b_bot;
      lower_solve l22 b_bot
    end

  (* Solve X·U = B in place in [b]; [u] upper triangular.  Row blocks of
     [b] are the independent direction. *)
  let rec upper_solve b u =
    let n = u.Linalg.rows and rows = b.Linalg.rows in
    if rows > base then begin
      let h = rows / 2 in
      let b_top = Linalg.sub b ~row:0 ~col:0 ~rows:h ~cols:n
      and b_bot = Linalg.sub b ~row:h ~col:0 ~rows:(rows - h) ~cols:n in
      R.scope (fun sc ->
          let top = R.spawn sc (fun () -> upper_solve b_top u) in
          upper_solve b_bot u;
          R.sync sc;
          R.get top)
    end
    else if n <= base then
      for i = 0 to rows - 1 do
        for j = 0 to n - 1 do
          let acc = ref (Linalg.get b i j) in
          for k = 0 to j - 1 do
            acc := !acc -. (Linalg.get b i k *. Linalg.get u k j)
          done;
          Linalg.set b i j (!acc /. Linalg.get u j j)
        done
      done
    else begin
      let h = n / 2 in
      let u11 = Linalg.sub u ~row:0 ~col:0 ~rows:h ~cols:h
      and u12 = Linalg.sub u ~row:0 ~col:h ~rows:h ~cols:(n - h)
      and u22 = Linalg.sub u ~row:h ~col:h ~rows:(n - h) ~cols:(n - h) in
      let b_left = Linalg.sub b ~row:0 ~col:0 ~rows ~cols:h
      and b_right = Linalg.sub b ~row:0 ~col:h ~rows ~cols:(n - h) in
      upper_solve b_left u11;
      Rect.mult_sub b_left u12 b_right;
      upper_solve b_right u22
    end

  let rec factor a =
    let n = a.Linalg.rows in
    if n <= base then lu_base a
    else begin
      let h = n / 2 in
      let a11 = Linalg.sub a ~row:0 ~col:0 ~rows:h ~cols:h
      and a12 = Linalg.sub a ~row:0 ~col:h ~rows:h ~cols:(n - h)
      and a21 = Linalg.sub a ~row:h ~col:0 ~rows:(n - h) ~cols:h
      and a22 = Linalg.sub a ~row:h ~col:h ~rows:(n - h) ~cols:(n - h) in
      factor a11;
      R.scope (fun sc ->
          let solves = R.spawn sc (fun () -> lower_solve a11 a12) in
          upper_solve a21 a11;
          R.sync sc;
          R.get solves);
      Rect.mult_sub a21 a12 a22;
      factor a22
    end

  let run a = factor a
end

(** Reconstruct L·U from the packed in-place result, for validation. *)
let reconstruct packed =
  let n = packed.Linalg.rows in
  let l = Linalg.init n n (fun i j ->
      if i > j then Linalg.get packed i j else if i = j then 1.0 else 0.0)
  and u = Linalg.init n n (fun i j ->
      if i <= j then Linalg.get packed i j else 0.0)
  in
  let prod = Linalg.create n n in
  Linalg.matmul_add_naive l u prod;
  prod
