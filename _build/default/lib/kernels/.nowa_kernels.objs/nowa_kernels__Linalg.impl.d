lib/kernels/linalg.ml: Array Float Nowa_util
