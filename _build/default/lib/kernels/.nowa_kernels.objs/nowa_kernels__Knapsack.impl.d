lib/kernels/knapsack.ml: Array Atomic Kernel_intf Nowa_util
