lib/kernels/registry.mli: Kernel_intf
