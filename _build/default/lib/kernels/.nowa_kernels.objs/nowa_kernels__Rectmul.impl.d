lib/kernels/rectmul.ml: Kernel_intf Linalg
