lib/kernels/nqueens.ml: Array Kernel_intf List
