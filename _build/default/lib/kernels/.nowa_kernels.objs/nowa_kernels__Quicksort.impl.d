lib/kernels/quicksort.ml: Array Kernel_intf Nowa_util
