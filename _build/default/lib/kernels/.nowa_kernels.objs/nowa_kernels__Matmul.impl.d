lib/kernels/matmul.ml: Kernel_intf Linalg
