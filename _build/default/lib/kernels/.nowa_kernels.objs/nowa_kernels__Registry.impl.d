lib/kernels/registry.ml: Array Cholesky Fft Fib Float Hashtbl Heat Integrate Kernel_intf Knapsack Linalg List Lu Matmul Nowa_runtime Nqueens Printf Quicksort Rectmul Strassen String
