lib/kernels/heat.ml: Array Kernel_intf
