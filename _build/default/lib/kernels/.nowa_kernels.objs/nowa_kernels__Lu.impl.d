lib/kernels/lu.ml: Kernel_intf Linalg Rectmul
