lib/kernels/fib.ml: Kernel_intf
