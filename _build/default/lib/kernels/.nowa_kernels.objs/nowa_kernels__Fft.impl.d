lib/kernels/fft.ml: Array Float Kernel_intf Nowa_util
