lib/kernels/integrate.ml: Float Kernel_intf
