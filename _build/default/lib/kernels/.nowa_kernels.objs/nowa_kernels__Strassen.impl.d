lib/kernels/strassen.ml: Kernel_intf Linalg List
