lib/kernels/kernel_intf.ml: Nowa_runtime
