lib/kernels/linalg.mli:
