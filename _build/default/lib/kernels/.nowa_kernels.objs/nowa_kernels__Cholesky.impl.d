lib/kernels/cholesky.ml: Kernel_intf Linalg Rectmul
