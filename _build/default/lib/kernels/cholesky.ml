(** Recursive blocked Cholesky factorisation (the paper's [cholesky]
    benchmark, dense variant): an SPD matrix A is factored in place into
    the lower-triangular L with A = L·Lᵀ.

    Quadrant recursion:  L11 = chol(A11);  L21 = A21·L11⁻ᵀ;
    A22 ← A22 − L21·L21ᵀ (SYRK);  L22 = chol(A22).  The SYRK update and
    the triangular solve use the parallel rectangular-multiply core.
    The paper notes this benchmark stresses stack allocation and the
    global stack pool; in this platform that pressure shows up through
    the {!Nowa_runtime.Stack_pool} substrate. *)

module Make (R : Kernel_intf.RUNTIME) = struct
  let base = 32

  module Rect = Rectmul.Make (R)

  let chol_base a =
    let n = a.Linalg.rows in
    for j = 0 to n - 1 do
      let diag = ref (Linalg.get a j j) in
      for k = 0 to j - 1 do
        let v = Linalg.get a j k in
        diag := !diag -. (v *. v)
      done;
      let ljj = sqrt !diag in
      Linalg.set a j j ljj;
      for i = j + 1 to n - 1 do
        let acc = ref (Linalg.get a i j) in
        for k = 0 to j - 1 do
          acc := !acc -. (Linalg.get a i k *. Linalg.get a j k)
        done;
        Linalg.set a i j (!acc /. ljj)
      done
    done

  (* Solve X·Lᵀ = B in place in [b] ([l] lower triangular).  Row blocks
     of [b] are independent and split in parallel; the triangular
     dimension is blocked recursively (Lᵀ has upper-triangular quadrant
     structure [l11ᵀ l21ᵀ; 0 l22ᵀ]):
       x_left = b_left·l11⁻ᵀ;  b_right −= x_left·l21ᵀ;
       x_right = b_right·l22⁻ᵀ. *)
  let rec trsm_right_transposed b l =
    let n = l.Linalg.rows and rows = b.Linalg.rows in
    if rows > base then begin
      let h = rows / 2 in
      let b_top = Linalg.sub b ~row:0 ~col:0 ~rows:h ~cols:n
      and b_bot = Linalg.sub b ~row:h ~col:0 ~rows:(rows - h) ~cols:n in
      R.scope (fun sc ->
          let top = R.spawn sc (fun () -> trsm_right_transposed b_top l) in
          trsm_right_transposed b_bot l;
          R.sync sc;
          R.get top)
    end
    else if n > base then begin
      let h = n / 2 in
      let l11 = Linalg.sub l ~row:0 ~col:0 ~rows:h ~cols:h
      and l21 = Linalg.sub l ~row:h ~col:0 ~rows:(n - h) ~cols:h
      and l22 = Linalg.sub l ~row:h ~col:h ~rows:(n - h) ~cols:(n - h) in
      let b_left = Linalg.sub b ~row:0 ~col:0 ~rows ~cols:h
      and b_right = Linalg.sub b ~row:0 ~col:h ~rows ~cols:(n - h) in
      trsm_right_transposed b_left l11;
      let l21t = Linalg.transpose l21 in
      Rect.mult_sub b_left l21t b_right;
      trsm_right_transposed b_right l22
    end
    else
      (* X·Lᵀ = B column-by-column: x_ij = (b_ij − Σ_{k<j} x_ik·l_jk)/l_jj *)
      for i = 0 to rows - 1 do
        for j = 0 to n - 1 do
          let acc = ref (Linalg.get b i j) in
          for k = 0 to j - 1 do
            acc := !acc -. (Linalg.get b i k *. Linalg.get l j k)
          done;
          Linalg.set b i j (!acc /. Linalg.get l j j)
        done
      done

  (* a22 ← a22 − l21·l21ᵀ.  The transpose is materialised once; the
     multiply itself is the parallel rectangular core.  Only the lower
     triangle of a22 is meaningful afterwards, but computing the full
     update keeps the code regular. *)
  let syrk_sub a22 l21 =
    let l21t = Linalg.transpose l21 in
    Rect.mult_sub l21 l21t a22

  let rec factor a =
    let n = a.Linalg.rows in
    if n <= base then chol_base a
    else begin
      let h = n / 2 in
      let a11 = Linalg.sub a ~row:0 ~col:0 ~rows:h ~cols:h
      and a21 = Linalg.sub a ~row:h ~col:0 ~rows:(n - h) ~cols:h
      and a22 = Linalg.sub a ~row:h ~col:h ~rows:(n - h) ~cols:(n - h) in
      factor a11;
      trsm_right_transposed a21 a11;
      syrk_sub a22 a21;
      factor a22
    end

  let run a = factor a
end

(** Reconstruct L·Lᵀ from the in-place result (upper garbage ignored). *)
let reconstruct packed =
  let n = packed.Linalg.rows in
  let l = Linalg.init n n (fun i j ->
      if i >= j then Linalg.get packed i j else 0.0)
  in
  let lt = Linalg.transpose l in
  let prod = Linalg.create n n in
  Linalg.matmul_add_naive l lt prod;
  prod
