(** Parallel quicksort on an int array: Hoare partition, the smaller side
    spawned, insertion sort below a cutoff. *)

module Make (R : Kernel_intf.RUNTIME) = struct
  let insertion a lo hi =
    for i = lo + 1 to hi do
      let key = a.(i) in
      let j = ref (i - 1) in
      while !j >= lo && a.(!j) > key do
        a.(!j + 1) <- a.(!j);
        decr j
      done;
      a.(!j + 1) <- key
    done

  (* Median-of-three pivot keeps the recursion balanced on the adversarial
     patterns the test-suite throws at it. *)
  let partition a lo hi =
    let mid = lo + ((hi - lo) / 2) in
    let swap i j =
      let t = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- t
    in
    if a.(mid) < a.(lo) then swap mid lo;
    if a.(hi) < a.(lo) then swap hi lo;
    if a.(hi) < a.(mid) then swap hi mid;
    let pivot = a.(mid) in
    let i = ref (lo - 1) and j = ref (hi + 1) in
    let continue = ref true in
    let result = ref 0 in
    while !continue do
      incr i;
      while a.(!i) < pivot do
        incr i
      done;
      decr j;
      while a.(!j) > pivot do
        decr j
      done;
      if !i >= !j then begin
        result := !j;
        continue := false
      end
      else swap !i !j
    done;
    !result

  let rec sort ?(cutoff = 512) a lo hi =
    if hi - lo < cutoff then insertion a lo hi
    else begin
      let p = partition a lo hi in
      R.scope (fun sc ->
          let left = R.spawn sc (fun () -> sort ~cutoff a lo p) in
          sort ~cutoff a (p + 1) hi;
          R.sync sc;
          R.get left)
    end

  let run ?cutoff a =
    let n = Array.length a in
    if n > 1 then sort ?cutoff a 0 (n - 1)
end

let random_array ?(seed = 7) n =
  let rng = Nowa_util.Xoshiro.make ~seed in
  Array.init n (fun _ -> Nowa_util.Xoshiro.int rng 1_000_000_000)

let is_sorted a =
  let ok = ref true in
  for i = 0 to Array.length a - 2 do
    if a.(i) > a.(i + 1) then ok := false
  done;
  !ok
