(** Rectangular matrix multiply by recursive splitting of the largest
    dimension, after the Cilk benchmark.  Splits of the result dimensions
    (rows/columns) run in parallel; a split of the shared inner dimension
    creates two accumulations into the same result and runs sequentially.

    This module is also the matrix-multiply core reused by the LU and
    Cholesky kernels for their Schur-complement updates. *)

module Make (R : Kernel_intf.RUNTIME) = struct
  let base = 32

  let rec mult ~negate a b c =
    let m = c.Linalg.rows and n = c.Linalg.cols and k = a.Linalg.cols in
    if m <= base && n <= base && k <= base then
      if negate then Linalg.matmul_sub_naive a b c
      else Linalg.matmul_add_naive a b c
    else if m >= n && m >= k then begin
      let h = m / 2 in
      let a_top = Linalg.sub a ~row:0 ~col:0 ~rows:h ~cols:k
      and a_bot = Linalg.sub a ~row:h ~col:0 ~rows:(m - h) ~cols:k
      and c_top = Linalg.sub c ~row:0 ~col:0 ~rows:h ~cols:n
      and c_bot = Linalg.sub c ~row:h ~col:0 ~rows:(m - h) ~cols:n in
      R.scope (fun sc ->
          let top = R.spawn sc (fun () -> mult ~negate a_top b c_top) in
          mult ~negate a_bot b c_bot;
          R.sync sc;
          R.get top)
    end
    else if n >= k then begin
      let h = n / 2 in
      let b_left = Linalg.sub b ~row:0 ~col:0 ~rows:k ~cols:h
      and b_right = Linalg.sub b ~row:0 ~col:h ~rows:k ~cols:(n - h)
      and c_left = Linalg.sub c ~row:0 ~col:0 ~rows:m ~cols:h
      and c_right = Linalg.sub c ~row:0 ~col:h ~rows:m ~cols:(n - h) in
      R.scope (fun sc ->
          let left = R.spawn sc (fun () -> mult ~negate a b_left c_left) in
          mult ~negate a b_right c_right;
          R.sync sc;
          R.get left)
    end
    else begin
      (* Inner dimension: both halves accumulate into all of [c], so they
         are serialised — the only dependency in the recursion. *)
      let h = k / 2 in
      let a_left = Linalg.sub a ~row:0 ~col:0 ~rows:m ~cols:h
      and a_right = Linalg.sub a ~row:0 ~col:h ~rows:m ~cols:(k - h)
      and b_top = Linalg.sub b ~row:0 ~col:0 ~rows:h ~cols:n
      and b_bot = Linalg.sub b ~row:h ~col:0 ~rows:(k - h) ~cols:n in
      mult ~negate a_left b_top c;
      mult ~negate a_right b_bot c
    end

  let mult_add a b c = mult ~negate:false a b c
  let mult_sub a b c = mult ~negate:true a b c

  (** The benchmark entry: c ← a·b on fresh rectangular inputs. *)
  let run a b =
    let c = Linalg.create a.Linalg.rows b.Linalg.cols in
    mult_add a b c;
    c
end
