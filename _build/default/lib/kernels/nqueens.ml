(** Count the placements of [n] non-attacking queens — the benchmark of
    Figure 1.  One task is spawned per viable queen position; each task
    carries its own copy of the column assignment prefix, as in the Cilk
    original. *)

module Make (R : Kernel_intf.RUNTIME) = struct
  let safe board row col =
    let rec check r =
      r >= row
      || board.(r) <> col
         && abs (board.(r) - col) <> row - r
         && check (r + 1)
    in
    check 0

  let rec count n board row =
    if row = n then 1
    else
      R.scope (fun sc ->
          let promises = ref [] in
          for col = 0 to n - 1 do
            if safe board row col then begin
              let board' = Array.copy board in
              board'.(row) <- col;
              promises := R.spawn sc (fun () -> count n board' (row + 1)) :: !promises
            end
          done;
          R.sync sc;
          List.fold_left (fun acc p -> acc + R.get p) 0 !promises)

  let run n = count n (Array.make n (-1)) 0
end

(** Known solution counts for validation. *)
let solutions = [| 1; 1; 0; 0; 2; 10; 4; 40; 92; 352; 724; 2680; 14200; 73712; 365596 |]
