(** 0/1 knapsack by branch-and-bound, after the Cilk/Fibril benchmark.

    A task is spawned per branch of the search tree; branches are pruned
    against the best value found so far (a shared atomic), using the
    fractional-relaxation upper bound.  As the paper discusses at length
    (Section V-A), the amount of work — though not the result — depends
    on task execution order, which makes this benchmark highly sensitive
    to the stealing scheme.  [run] takes both branches in the paper's
    original spawn order; [run ~flipped:true] applies the source-order
    flip the authors describe, which favours continuation stealing. *)

type item = { value : int; weight : int }

(* Deterministic instance generation; items sorted by value density, as
   branch-and-bound requires for the fractional bound to prune well. *)
let make_items ~seed n =
  let rng = Nowa_util.Xoshiro.make ~seed in
  let items =
    Array.init n (fun _ ->
        {
          value = 1 + Nowa_util.Xoshiro.int rng 100;
          weight = 1 + Nowa_util.Xoshiro.int rng 100;
        })
  in
  Array.sort
    (fun a b ->
      compare (float_of_int b.value /. float_of_int b.weight)
        (float_of_int a.value /. float_of_int a.weight))
    items;
  items

let default_capacity items =
  Array.fold_left (fun acc it -> acc + it.weight) 0 items / 2

module Make (R : Kernel_intf.RUNTIME) = struct
  let update_best best v =
    let rec loop () =
      let cur = Atomic.get best in
      if v > cur && not (Atomic.compare_and_set best cur v) then loop ()
    in
    loop ()

  let rec branch ~flipped items best i capacity value =
    let n = Array.length items in
    if capacity < 0 then min_int
    else if i = n || capacity = 0 then begin
      update_best best value;
      value
    end
    else begin
      let it = items.(i) in
      let upper_bound =
        value
        + int_of_float
            (float_of_int capacity *. float_of_int it.value /. float_of_int it.weight)
      in
      if upper_bound < Atomic.get best then min_int
      else
        R.scope (fun sc ->
            let first, second =
              let take () =
                branch ~flipped items best (i + 1) (capacity - it.weight)
                  (value + it.value)
              and skip () = branch ~flipped items best (i + 1) capacity value in
              if flipped then (skip, take) else (take, skip)
            in
            let a = R.spawn sc first in
            let b = second () in
            R.sync sc;
            max (R.get a) b)
    end

  let run ?(flipped = false) ?capacity items =
    let capacity =
      match capacity with Some c -> c | None -> default_capacity items
    in
    let best = Atomic.make 0 in
    max (branch ~flipped items best 0 capacity 0) (Atomic.get best)
end
