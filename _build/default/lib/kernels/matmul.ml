(** Square matrix multiply with the classic Cilk 8-way quadrant recursion:
    the four products of the first half are spawned together, synced, and
    then the four of the second half — two fork/join phases per level. *)

module Make (R : Kernel_intf.RUNTIME) = struct
  let base = 32

  let rec mult_add a b c =
    let n = c.Linalg.rows in
    if n <= base || n mod 2 <> 0 then Linalg.matmul_add_naive a b c
    else begin
      let a11, a12, a21, a22 = Linalg.quadrants a in
      let b11, b12, b21, b22 = Linalg.quadrants b in
      let c11, c12, c21, c22 = Linalg.quadrants c in
      R.scope (fun sc ->
          let p1 = R.spawn sc (fun () -> mult_add a11 b11 c11) in
          let p2 = R.spawn sc (fun () -> mult_add a11 b12 c12) in
          let p3 = R.spawn sc (fun () -> mult_add a21 b11 c21) in
          mult_add a21 b12 c22;
          R.sync sc;
          R.get p1;
          R.get p2;
          R.get p3);
      R.scope (fun sc ->
          let p1 = R.spawn sc (fun () -> mult_add a12 b21 c11) in
          let p2 = R.spawn sc (fun () -> mult_add a12 b22 c12) in
          let p3 = R.spawn sc (fun () -> mult_add a22 b21 c21) in
          mult_add a22 b22 c22;
          R.sync sc;
          R.get p1;
          R.get p2;
          R.get p3)
    end

  (** The benchmark entry: c ← a·b on fresh n×n inputs. *)
  let run a b =
    assert (a.Linalg.rows = a.Linalg.cols && b.Linalg.rows = b.Linalg.cols);
    let c = Linalg.create a.Linalg.rows b.Linalg.cols in
    mult_add a b c;
    c
end
