(** Jacobi heat diffusion on a 2D grid with fixed boundary values: each
    timestep computes the 5-point stencil from the previous grid into the
    next, with the row range divided recursively into parallel strips
    (the Cilk [heat] benchmark's structure). *)

type grid = { nx : int; ny : int; cells : float array }
(* Row-major (nx + 2) × (ny + 2) with a one-cell boundary frame. *)

let idx g i j = (i * (g.ny + 2)) + j

let create ~nx ~ny ~init ~boundary =
  let g = { nx; ny; cells = Array.make ((nx + 2) * (ny + 2)) 0.0 } in
  for i = 0 to nx + 1 do
    for j = 0 to ny + 1 do
      let v =
        if i = 0 || j = 0 || i = nx + 1 || j = ny + 1 then boundary i j
        else init i j
      in
      g.cells.(idx g i j) <- v
    done
  done;
  g

let default ~nx ~ny =
  create ~nx ~ny
    ~init:(fun _ _ -> 0.0)
    ~boundary:(fun i j ->
      (* A smooth, position-dependent rim keeps the fixed point nontrivial. *)
      sin (float_of_int i /. 10.0) +. cos (float_of_int j /. 10.0))

let checksum g =
  let acc = ref 0.0 in
  Array.iteri
    (fun i v -> acc := !acc +. (v *. float_of_int ((i mod 101) + 1)))
    g.cells;
  !acc

module Make (R : Kernel_intf.RUNTIME) = struct
  let strip_rows = 16

  let step_rows src dst lo hi =
    let ny = src.ny in
    for i = lo to hi - 1 do
      for j = 1 to ny do
        let c = src.cells.(idx src i j) in
        let up = src.cells.(idx src (i - 1) j)
        and down = src.cells.(idx src (i + 1) j)
        and left = src.cells.(idx src i (j - 1))
        and right = src.cells.(idx src i (j + 1)) in
        dst.cells.(idx dst i j) <-
          c +. (0.2 *. (up +. down +. left +. right -. (4.0 *. c)))
      done
    done

  let rec step_range src dst lo hi =
    if hi - lo <= strip_rows then step_rows src dst lo hi
    else
      R.scope (fun sc ->
          let mid = lo + ((hi - lo) / 2) in
          let top = R.spawn sc (fun () -> step_range src dst lo mid) in
          step_range src dst mid hi;
          R.sync sc;
          R.get top)

  let run ~steps g0 =
    let a = { g0 with cells = Array.copy g0.cells } in
    let b = { g0 with cells = Array.copy g0.cells } in
    let src = ref a and dst = ref b in
    for _ = 1 to steps do
      step_range !src !dst 1 (g0.nx + 1);
      let t = !src in
      src := !dst;
      dst := t
    done;
    !src
end
