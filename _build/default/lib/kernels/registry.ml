type size = Test | Small | Medium | Large

type instance = {
  bench_name : string;
  input_desc : string;
  tolerance : float;
  make_thunk : (module Kernel_intf.RUNTIME) -> unit -> float;
}

(* Fingerprint helper for sorted int arrays: position-weighted sum is
   deterministic once sorted. *)
let int_array_fingerprint a =
  let acc = ref 0.0 in
  Array.iteri
    (fun i v -> acc := !acc +. (float_of_int v *. float_of_int ((i mod 97) + 1) /. 1e6))
    a;
  !acc

let fib_instance n =
  {
    bench_name = "fib";
    input_desc = Printf.sprintf "n=%d" n;
    tolerance = 0.0;
    make_thunk =
      (fun (module R : Kernel_intf.RUNTIME) ->
        let module K = Fib.Make (R) in
        fun () -> float_of_int (K.run n));
  }

let integrate_instance n epsilon =
  {
    bench_name = "integrate";
    input_desc = Printf.sprintf "n=%d eps=%g" n epsilon;
    tolerance = 1e-9;
    make_thunk =
      (fun (module R : Kernel_intf.RUNTIME) ->
        let module K = Integrate.Make (R) in
        fun () -> K.run ~epsilon n);
  }

let nqueens_instance n =
  {
    bench_name = "nqueens";
    input_desc = Printf.sprintf "n=%d" n;
    tolerance = 0.0;
    make_thunk =
      (fun (module R : Kernel_intf.RUNTIME) ->
        let module K = Nqueens.Make (R) in
        fun () -> float_of_int (K.run n));
  }

let knapsack_instance items =
  {
    bench_name = "knapsack";
    input_desc = Printf.sprintf "items=%d" items;
    tolerance = 0.0;
    make_thunk =
      (fun (module R : Kernel_intf.RUNTIME) ->
        let module K = Knapsack.Make (R) in
        let instance = Knapsack.make_items ~seed:11 items in
        fun () -> float_of_int (K.run instance));
  }

let quicksort_instance n =
  {
    bench_name = "quicksort";
    input_desc = Printf.sprintf "n=%d" n;
    tolerance = 0.0;
    make_thunk =
      (fun (module R : Kernel_intf.RUNTIME) ->
        let module K = Quicksort.Make (R) in
        fun () ->
          let a = Quicksort.random_array ~seed:7 n in
          K.run a;
          if not (Quicksort.is_sorted a) then nan else int_array_fingerprint a);
  }

let cholesky_instance n =
  {
    bench_name = "cholesky";
    input_desc = Printf.sprintf "n=%d" n;
    tolerance = 1e-8;
    make_thunk =
      (fun (module R : Kernel_intf.RUNTIME) ->
        let module K = Cholesky.Make (R) in
        let pristine = Linalg.random_spd ~seed:5 n in
        fun () ->
          let a = Linalg.copy pristine in
          K.run a;
          Linalg.checksum a);
  }

let fft_instance n =
  {
    bench_name = "fft";
    input_desc = Printf.sprintf "n=2^%d" (int_of_float (Float.round (log (float_of_int n) /. log 2.0)));
    tolerance = 1e-9;
    make_thunk =
      (fun (module R : Kernel_intf.RUNTIME) ->
        let module K = Fft.Make (R) in
        let x = Fft.random_signal ~seed:3 n in
        fun () -> Fft.checksum (K.run x));
  }

let heat_instance nx ny steps =
  {
    bench_name = "heat";
    input_desc = Printf.sprintf "%dx%d steps=%d" nx ny steps;
    tolerance = 1e-9;
    make_thunk =
      (fun (module R : Kernel_intf.RUNTIME) ->
        let module K = Heat.Make (R) in
        let g0 = Heat.default ~nx ~ny in
        fun () -> Heat.checksum (K.run ~steps g0));
  }

let lu_instance n =
  {
    bench_name = "lu";
    input_desc = Printf.sprintf "n=%d" n;
    tolerance = 1e-8;
    make_thunk =
      (fun (module R : Kernel_intf.RUNTIME) ->
        let module K = Lu.Make (R) in
        let pristine = Linalg.random_spd ~seed:9 n in
        fun () ->
          let a = Linalg.copy pristine in
          K.run a;
          Linalg.checksum a);
  }

let matmul_instance n =
  {
    bench_name = "matmul";
    input_desc = Printf.sprintf "n=%d" n;
    tolerance = 1e-9;
    make_thunk =
      (fun (module R : Kernel_intf.RUNTIME) ->
        let module K = Matmul.Make (R) in
        let a = Linalg.random ~seed:21 n n and b = Linalg.random ~seed:22 n n in
        fun () -> Linalg.checksum (K.run a b));
  }

let rectmul_instance m k n =
  {
    bench_name = "rectmul";
    input_desc = Printf.sprintf "%dx%dx%d" m k n;
    tolerance = 1e-9;
    make_thunk =
      (fun (module R : Kernel_intf.RUNTIME) ->
        let module K = Rectmul.Make (R) in
        let a = Linalg.random ~seed:31 m k and b = Linalg.random ~seed:32 k n in
        fun () -> Linalg.checksum (K.run a b));
  }

let strassen_instance n =
  {
    bench_name = "strassen";
    input_desc = Printf.sprintf "n=%d" n;
    tolerance = 1e-7;
    make_thunk =
      (fun (module R : Kernel_intf.RUNTIME) ->
        let module K = Strassen.Make (R) in
        let a = Linalg.random ~seed:41 n n and b = Linalg.random ~seed:42 n n in
        fun () -> Linalg.checksum (K.run a b));
  }

(* Inputs per scale; Table I order.  The paper's inputs correspond to a
   256-thread EPYC; [Large] is the closest laptop-scale analogue. *)
let table size =
  match size with
  | Test ->
    [
      cholesky_instance 64;
      fft_instance 256;
      fib_instance 15;
      heat_instance 32 32 4;
      integrate_instance 100 1e-4;
      knapsack_instance 16;
      lu_instance 64;
      matmul_instance 64;
      nqueens_instance 7;
      quicksort_instance 10_000;
      rectmul_instance 48 96 24;
      strassen_instance 64;
    ]
  | Small ->
    [
      cholesky_instance 128;
      fft_instance 4096;
      fib_instance 24;
      heat_instance 128 128 8;
      integrate_instance 1_000 1e-5;
      knapsack_instance 22;
      lu_instance 128;
      matmul_instance 128;
      nqueens_instance 9;
      quicksort_instance 100_000;
      rectmul_instance 96 192 64;
      strassen_instance 128;
    ]
  | Medium ->
    [
      cholesky_instance 256;
      fft_instance 65_536;
      fib_instance 29;
      heat_instance 256 256 20;
      integrate_instance 10_000 1e-5;
      knapsack_instance 26;
      lu_instance 256;
      matmul_instance 256;
      nqueens_instance 11;
      quicksort_instance 1_000_000;
      rectmul_instance 256 512 128;
      strassen_instance 256;
    ]
  | Large ->
    [
      cholesky_instance 512;
      fft_instance 1_048_576;
      fib_instance 34;
      heat_instance 1024 512 50;
      integrate_instance 10_000 1e-7;
      knapsack_instance 30;
      lu_instance 512;
      matmul_instance 512;
      nqueens_instance 13;
      quicksort_instance 10_000_000;
      rectmul_instance 512 1024 256;
      strassen_instance 512;
    ]

let names =
  [
    "cholesky"; "fft"; "fib"; "heat"; "integrate"; "knapsack"; "lu"; "matmul";
    "nqueens"; "quicksort"; "rectmul"; "strassen";
  ]

let instances size = table size

let find size name =
  List.find (fun i -> String.equal i.bench_name name) (table size)

let reference_cache : (string, float) Hashtbl.t = Hashtbl.create 64

let size_tag = function
  | Test -> "test"
  | Small -> "small"
  | Medium -> "medium"
  | Large -> "large"

let reference size name =
  let key = size_tag size ^ "/" ^ name in
  match Hashtbl.find_opt reference_cache key with
  | Some v -> v
  | None ->
    let inst = find size name in
    let module S = Nowa_runtime.Serial_runtime in
    let thunk = inst.make_thunk (module S) in
    let v = S.run thunk in
    Hashtbl.add reference_cache key v;
    v

let matches inst reference fingerprint =
  if inst.tolerance = 0.0 then reference = fingerprint
  else
    let scale = Float.max 1.0 (Float.abs reference) in
    Float.abs (reference -. fingerprint) /. scale <= inst.tolerance
