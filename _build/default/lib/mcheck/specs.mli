(** Model-checkable specifications of the platform's coordination
    algorithms, written against {!Mcheck.Cell} so every shared access is
    a scheduling point.

    Each spec builds a small closed scenario whose interleavings
    {!Mcheck.explore} can enumerate exhaustively.  Three strand-counter
    protocols are modelled:

    - {!naive_counter_spec} — the {e hazardous} protocol of the paper's
      Figure 6: a plain active-strand counter where the thief increments
      {e after} stealing and the worker decrements after a failed pop.
      The checker finds the race (a worker passes the sync point while a
      strand is still active).
    - {!wait_free_counter_spec} — the Nowa scheme (Imax initialisation,
      α on the main path, Equation 5 restore): no interleaving violates.
    - {!lock_counter_spec} — the Fibril scheme with the Listing-2
      lock coupling: no interleaving violates.

    Plus deque scenarios for the Chase-Lev and THE queues: an owner
    pushing/popping races thieves stealing; every element must be
    consumed exactly once and LIFO/FIFO order respected. *)

val chase_lev_spec :
  pushes:int -> pops:int -> thieves:int ->
  unit -> (unit -> unit) list * (unit -> bool)

val the_queue_spec :
  pushes:int -> pops:int -> thieves:int ->
  unit -> (unit -> unit) list * (unit -> bool)

val naive_counter_spec :
  children:int -> unit -> (unit -> unit) list * (unit -> bool)

val wait_free_counter_spec :
  children:int -> unit -> (unit -> unit) list * (unit -> bool)

val lock_counter_spec :
  children:int -> unit -> (unit -> unit) list * (unit -> bool)
