lib/mcheck/mcheck.mli:
