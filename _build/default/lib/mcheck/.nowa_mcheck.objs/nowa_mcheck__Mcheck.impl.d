lib/mcheck/mcheck.ml: Array Effect List Printexc
