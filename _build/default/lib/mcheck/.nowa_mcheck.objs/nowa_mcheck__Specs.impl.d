lib/mcheck/specs.ml: Array List Mcheck
