lib/mcheck/specs.mli:
