(** Systematic interleaving exploration for the platform's concurrent
    algorithms — the methodology of Section II-D of the paper, where
    model checking found a bug in a published Chase-Lev implementation
    (Norris & Demsky, CDSChecker).

    A {e spec} builds, on fresh shared state, a set of thread bodies and
    a final invariant.  Thread bodies access shared memory exclusively
    through {!Cell}, whose every operation is one atomic action preceded
    by a scheduling point.  {!explore} then enumerates thread
    interleavings exhaustively (stateless search with replay, as in
    CHESS): every execution either completes — and must satisfy the
    invariant and all inline {!check} assertions — or is truncated at
    the step bound (spin loops).

    Under OCaml's sequentially-consistent atomics this checks the
    algorithms under SC; it cannot exhibit weak-memory-only bugs, but it
    does exhibit all interleaving races — including the worker/thief
    race of the paper's Figure 6, which the test-suite demonstrates on a
    naive strand counter and proves absent (bounded-exhaustively) from
    the wait-free and lock-based counters. *)

module Cell : sig
  type 'a t

  val make : 'a -> 'a t
  val read : 'a t -> 'a
  val write : 'a t -> 'a -> unit
  val cas : 'a t -> 'a -> 'a -> bool
  (** Compare (structural equality) and swap, one atomic action. *)

  val fetch_add : int t -> int -> int
  val peek : 'a t -> 'a
  (** Read without a scheduling point — for invariants only. *)
end

val check : bool -> string -> unit
(** Inline assertion inside a thread body: a violation aborts the
    execution and is reported with its schedule. *)

type outcome = {
  executions : int;  (** completed interleavings explored *)
  truncated : int;  (** executions cut off at the step bound *)
  complete : bool;  (** false if the execution bound was hit *)
}

type result =
  | Ok of outcome
  | Violation of { schedule : int list; message : string }
      (** a schedule (sequence of thread indices) leading to a failed
          {!check} or final invariant *)

val explore :
  ?max_executions:int ->
  ?max_steps:int ->
  (unit -> (unit -> unit) list * (unit -> bool)) ->
  result
(** [explore spec] runs [spec ()] afresh for every explored schedule;
    the returned thread list runs under the controlled scheduler and the
    returned thunk is the final invariant.  Defaults: 200_000 executions,
    400 steps per execution. *)
