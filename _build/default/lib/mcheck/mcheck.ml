type _ Effect.t += Yield : unit Effect.t

exception Check_failed of string

module Cell = struct
  type 'a t = 'a ref

  let make v = ref v

  let read c =
    Effect.perform Yield;
    !c

  let write c v =
    Effect.perform Yield;
    c := v

  let cas c expected desired =
    Effect.perform Yield;
    if !c = expected then begin
      c := desired;
      true
    end
    else false

  let fetch_add c d =
    Effect.perform Yield;
    let v = !c in
    c := v + d;
    v

  let peek c = !c
end

let check cond msg = if not cond then raise (Check_failed msg)

type outcome = { executions : int; truncated : int; complete : bool }

type result =
  | Ok of outcome
  | Violation of { schedule : int list; message : string }

type thread_state =
  | Not_started of (unit -> unit)
  | Paused of (unit, unit) Effect.Deep.continuation
  | Finished

(* Advance thread [i] by one atomic action: resume it and run until the
   next scheduling point (or completion / a failed check). *)
let advance states violation i =
  let handler =
    {
      Effect.Deep.retc = (fun () -> states.(i) <- Finished);
      exnc =
        (fun e ->
          states.(i) <- Finished;
          let msg =
            match e with Check_failed m -> m | e -> Printexc.to_string e
          in
          if !violation = None then violation := Some msg);
      effc =
        (fun (type a) (e : a Effect.t) ->
          match e with
          | Yield ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                states.(i) <- Paused k)
          | _ -> None);
    }
  in
  match states.(i) with
  | Not_started f -> Effect.Deep.match_with f () handler
  | Paused k ->
    states.(i) <- Finished (* overwritten at the next pause *);
    Effect.Deep.continue k ()
  | Finished -> invalid_arg "Mcheck: scheduled a finished thread"

exception Found of int list * string
exception Budget

let explore ?(max_executions = 200_000) ?(max_steps = 400) spec =
  let executions = ref 0 in
  let truncated = ref 0 in
  (* Stateless search: re-execute the system from scratch along [prefix],
     then return the thread states (or a violation seen on the way). *)
  let replay prefix =
    let threads, invariant = spec () in
    let states = Array.of_list (List.map (fun f -> Not_started f) threads) in
    let violation = ref None in
    List.iter
      (fun i ->
        if !violation = None then advance states violation i)
      prefix;
    (states, invariant, !violation)
  in
  (* [prefix] is kept newest-first; replays run it chronologically. *)
  let rec dfs prefix depth =
    let states, invariant, violation = replay (List.rev prefix) in
    match violation with
    | Some msg -> raise (Found (List.rev prefix, msg))
    | None ->
      let enabled = ref [] in
      Array.iteri
        (fun i s -> match s with Finished -> () | _ -> enabled := i :: !enabled)
        states;
      (match !enabled with
      | [] ->
        incr executions;
        if not (invariant ()) then
          raise (Found (List.rev prefix, "final invariant violated"));
        if !executions >= max_executions then raise Budget
      | enabled ->
        if depth >= max_steps then incr truncated
        else
          List.iter
            (fun i -> dfs (i :: prefix) (depth + 1))
            (List.rev enabled))
  in
  match dfs [] 0 with
  | () ->
    Ok { executions = !executions; truncated = !truncated; complete = true }
  | exception Budget ->
    Ok { executions = !executions; truncated = !truncated; complete = false }
  | exception Found (schedule, message) -> Violation { schedule; message }
