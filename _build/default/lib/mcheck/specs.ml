module Cell = Mcheck.Cell

let check = Mcheck.check

(* -- work-stealing deques --------------------------------------------- *)

(* Consumption log shared by a spec's threads: plain refs are fine
   because each slot has a single writer. *)
type consumption = { mutable taken : int list }

let conservation ~pushes ~logs ~size_at_end () =
  let all = List.concat_map (fun l -> l.taken) logs in
  let sorted = List.sort compare all in
  let distinct = List.sort_uniq compare all in
  List.length sorted = List.length distinct
  && List.for_all (fun v -> v >= 1 && v <= pushes) all
  && List.length all + size_at_end () = pushes

let chase_lev_spec ~pushes ~pops ~thieves () =
  let top = Cell.make 0 in
  let bottom = Cell.make 0 in
  let slots = Array.init (max 1 pushes) (fun _ -> Cell.make 0) in
  let owner_log = { taken = [] } in
  let thief_logs = List.init thieves (fun _ -> { taken = [] }) in
  let push v =
    let b = Cell.read bottom in
    Cell.write slots.(b) v;
    Cell.write bottom (b + 1)
  in
  let pop () =
    let b = Cell.read bottom - 1 in
    Cell.write bottom b;
    let t = Cell.read top in
    if b < t then Cell.write bottom t (* empty *)
    else begin
      let v = Cell.read slots.(b) in
      if b > t then owner_log.taken <- v :: owner_log.taken
      else begin
        (* Last element: race thieves for it. *)
        if Cell.cas top t (t + 1) then owner_log.taken <- v :: owner_log.taken;
        Cell.write bottom (t + 1)
      end
    end
  in
  let steal log () =
    let t = Cell.read top in
    let b = Cell.read bottom in
    if t < b then begin
      let v = Cell.read slots.(t) in
      if Cell.cas top t (t + 1) then log.taken <- v :: log.taken
    end
  in
  let owner () =
    for v = 1 to pushes do
      push v
    done;
    for _ = 1 to pops do
      pop ()
    done
  in
  let threads = owner :: List.map (fun l -> steal l) thief_logs in
  let invariant =
    conservation ~pushes ~logs:(owner_log :: thief_logs) ~size_at_end:(fun () ->
        max 0 (Cell.peek bottom - Cell.peek top))
  in
  (threads, invariant)

let the_queue_spec ~pushes ~pops ~thieves () =
  let head = Cell.make 0 in
  let tail = Cell.make 0 in
  let lock = Cell.make false in
  let slots = Array.init (max 1 pushes) (fun _ -> Cell.make 0) in
  let owner_log = { taken = [] } in
  let thief_logs = List.init thieves (fun _ -> { taken = [] }) in
  let rec acquire () = if not (Cell.cas lock false true) then acquire () in
  let release () = Cell.write lock false in
  let push v =
    let t = Cell.read tail in
    Cell.write slots.(t) v;
    Cell.write tail (t + 1)
  in
  let pop () =
    let t = Cell.read tail - 1 in
    Cell.write tail t;
    let h = Cell.read head in
    if h > t then begin
      (* Conflict with a thief: arbitrate under the lock. *)
      Cell.write tail (t + 1);
      acquire ();
      let t = Cell.read tail - 1 in
      Cell.write tail t;
      let h = Cell.read head in
      if h > t then Cell.write tail h
      else begin
        let v = Cell.read slots.(t) in
        owner_log.taken <- v :: owner_log.taken
      end;
      release ()
    end
    else begin
      let v = Cell.read slots.(t) in
      owner_log.taken <- v :: owner_log.taken
    end
  in
  let steal log () =
    acquire ();
    let h = Cell.read head in
    Cell.write head (h + 1);
    let t = Cell.read tail in
    if h + 1 > t then Cell.write head h
    else begin
      let v = Cell.read slots.(h) in
      log.taken <- v :: log.taken
    end;
    release ()
  in
  let owner () =
    for v = 1 to pushes do
      push v
    done;
    for _ = 1 to pops do
      pop ()
    done
  in
  let threads = owner :: List.map (fun l -> steal l) thief_logs in
  let invariant =
    conservation ~pushes ~logs:(owner_log :: thief_logs) ~size_at_end:(fun () ->
        max 0 (Cell.peek tail - Cell.peek head))
  in
  (threads, invariant)

(* -- strand counters ---------------------------------------------------
   One frame, one spawn: the worker pushes the continuation, runs the
   child inline and pops; a thief races for the continuation.  Whichever
   control flow ends up holding the continuation is the main path and
   reaches the explicit sync; the other performs the implicit sync
   (Figure 5 of the paper).  [passes] counts executions of the code past
   the sync point; correctness = the sync is passed exactly once, and
   never while the child is still running. *)

type frame_obs = { mutable passes : int }

let counter_scenario ~note_steal ~note_resume ~main_sync ~joiner () =
  let avail = Cell.make false in
  let child_done = Cell.make false in
  let obs = { passes = 0 } in
  let pass () =
    check (Cell.peek child_done) "passed the sync point while the child runs";
    obs.passes <- obs.passes + 1
  in
  let worker () =
    Cell.write avail true (* pushBottom of the continuation *);
    Cell.write child_done true (* the spawned child runs and returns *);
    if Cell.cas avail true false then main_sync ~pass () (* not stolen *)
    else joiner ~pass () (* stolen: implicit sync *)
  in
  let thief () =
    if Cell.cas avail true false then begin
      note_steal ();
      note_resume ();
      main_sync ~pass ()
    end
  in
  ([ worker; thief ], fun () -> obs.passes = 1)

(* The hazardous protocol of Figure 6: counting is per-operation atomic,
   but the sync point checks the counter BEFORE publishing the
   suspension, so a joiner can decrement to zero in between and the
   wake-up is lost (the sync point is never passed — the "outcome of the
   program execution is undefined" of Section III-C). *)
let naive_counter_spec ~children () =
  assert (children = 1);
  let count = Cell.make 0 in
  let suspended = Cell.make false in
  counter_scenario
    ~note_steal:(fun () -> ignore (Cell.fetch_add count 1))
    ~note_resume:(fun () -> ())
    ~main_sync:(fun ~pass () ->
      if Cell.read count = 0 then pass ()
      else
        (* Racy: the check above and this publication are not atomic. *)
        Cell.write suspended true)
    ~joiner:(fun ~pass () ->
      let v = Cell.fetch_add count (-1) in
      if v = 1 && Cell.read suspended then pass ())
    ()

(* The wait-free Nowa protocol (Section IV): the counter starts at Imax
   (scaled down for the model), α is only written on the main path, the
   continuation is published BEFORE the Equation-5 restore, and the
   unique zero observer takes the continuation back with a CAS. *)
let wait_free_counter_spec ~children () =
  assert (children = 1);
  let i_max = 1000 in
  let counter = Cell.make i_max in
  let alpha = Cell.make 0 in
  let suspended = Cell.make false in
  counter_scenario
    ~note_steal:(fun () -> ())
    ~note_resume:(fun () ->
      let a = Cell.read alpha in
      Cell.write alpha (a + 1))
    ~main_sync:(fun ~pass () ->
      let a = Cell.read alpha in
      if a = 0 then pass () (* nothing was ever stolen: free fast path *)
      else begin
        Cell.write suspended true;
        let delta = a - i_max in
        let old = Cell.fetch_add counter delta in
        if old + delta = 0 then begin
          check (Cell.cas suspended true false)
            "restore observed zero but the continuation was gone";
          pass ()
        end
      end)
    ~joiner:(fun ~pass () ->
      let v = Cell.fetch_add counter (-1) in
      if v = 1 then begin
        check (Cell.cas suspended true false)
          "join observed zero but the continuation was gone";
        pass ()
      end)
    ()

(* The lock-based Fibril protocol (Listing 2): the count update is
   coupled with the steal under the lock, and the suspension publication
   happens in the same critical section as the count check. *)
let lock_counter_spec ~children () =
  assert (children = 1);
  let count = Cell.make 0 in
  let lock = Cell.make false in
  let suspended = Cell.make false in
  let rec acquire () = if not (Cell.cas lock false true) then acquire () in
  let release () = Cell.write lock false in
  counter_scenario
    ~note_steal:(fun () ->
      acquire ();
      let c = Cell.read count in
      Cell.write count (if c = 0 then 2 else c + 1);
      release ())
    ~note_resume:(fun () -> ())
    ~main_sync:(fun ~pass () ->
      acquire ();
      let c = Cell.read count in
      if c = 0 then begin
        release ();
        pass ()
      end
      else begin
        Cell.write count (c - 1);
        if Cell.read count = 0 then begin
          release ();
          pass ()
        end
        else begin
          Cell.write suspended true;
          release ()
        end
      end)
    ~joiner:(fun ~pass () ->
      acquire ();
      let c = Cell.read count in
      Cell.write count (c - 1);
      let zero = c - 1 = 0 in
      release ();
      if zero then begin
        check (Cell.peek suspended) "join hit zero before the frame suspended";
        pass ()
      end)
    ()
