lib/dag/cost_model.ml: List String
