lib/dag/intq.ml: Array
