lib/dag/dag.mli:
