lib/dag/recorder.mli: Dag Nowa_runtime
