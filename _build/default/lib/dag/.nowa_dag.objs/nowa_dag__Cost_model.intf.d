lib/dag/cost_model.mli:
