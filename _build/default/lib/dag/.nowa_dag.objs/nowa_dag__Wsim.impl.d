lib/dag/wsim.ml: Array Cost_model Dag Float Hashtbl Intq List Nowa_util Option
