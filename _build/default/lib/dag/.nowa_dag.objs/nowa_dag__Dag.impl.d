lib/dag/dag.ml: Array Bytes Char Printf Queue
