lib/dag/wsim.mli: Cost_model Dag
