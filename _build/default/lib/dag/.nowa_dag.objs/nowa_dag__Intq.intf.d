lib/dag/intq.mli:
