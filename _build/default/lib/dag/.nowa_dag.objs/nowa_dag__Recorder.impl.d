lib/dag/recorder.ml: Dag Float Fun Gc Nowa_runtime Unix
