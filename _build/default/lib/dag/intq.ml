type t = { mutable buf : int array; mutable head : int; mutable tail : int }
(* head = index of front element; tail = index one past the back;
   both monotone mod capacity via masking (capacity is a power of two). *)

let create () = { buf = Array.make 16 (-1); head = 0; tail = 0 }

let length t = t.tail - t.head
let is_empty t = t.head = t.tail

let grow t =
  let cap = Array.length t.buf in
  let nbuf = Array.make (cap * 2) (-1) in
  let n = length t in
  for i = 0 to n - 1 do
    nbuf.(i) <- t.buf.((t.head + i) land (cap - 1))
  done;
  t.buf <- nbuf;
  t.head <- 0;
  t.tail <- n

let push_back t v =
  if length t >= Array.length t.buf then grow t;
  t.buf.(t.tail land (Array.length t.buf - 1)) <- v;
  t.tail <- t.tail + 1

let pop_back t =
  if is_empty t then -1
  else begin
    t.tail <- t.tail - 1;
    t.buf.(t.tail land (Array.length t.buf - 1))
  end

let pop_front t =
  if is_empty t then -1
  else begin
    let v = t.buf.(t.head land (Array.length t.buf - 1)) in
    t.head <- t.head + 1;
    v
  end

let clear t =
  t.head <- 0;
  t.tail <- 0
