(** Trace-driven DAG extraction.

    [Recorder] implements the platform's runtime interface but executes
    everything serially, building the computation's fork/join DAG as it
    goes and charging each strand vertex with its measured serial
    execution time.  Because the kernels are functors over that
    interface, any benchmark can be recorded unmodified; the resulting
    DAG feeds the discrete-event scheduler simulator ({!Wsim}), which is
    how this reproduction scales the paper's experiments to 256 workers
    on a small host.

    Per-event timer overhead is subtracted from the strand costs
    ({!set_overhead_ns}); costs are floored at 1 ns. *)

include Nowa_runtime.Runtime_intf.S

val record : (unit -> 'a) -> Dag.t * 'a
(** Run the computation under the recorder and return its DAG. *)

val last_dag : unit -> Dag.t option
(** The DAG of the most recent {!run} (for use through the generic
    runtime interface, e.g. with {!Nowa_kernels.Registry}). *)

val set_overhead_ns : float -> unit
(** Calibrate the per-event recording overhead to subtract (default
    120 ns). *)
