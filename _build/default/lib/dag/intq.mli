(** Growable ring-buffer deque of ints (no boxing), used for the virtual
    worker deques and the virtual central queue of the simulator.
    [-1] is reserved (returned for "empty"). *)

type t

val create : unit -> t
val length : t -> int
val is_empty : t -> bool
val push_back : t -> int -> unit
val pop_back : t -> int
(** LIFO end; -1 if empty *)

val pop_front : t -> int
(** FIFO end; -1 if empty *)

val clear : t -> unit
