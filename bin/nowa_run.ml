(* nowa-run: run any Table I benchmark on any runtime preset (or its
   serial elision), with repetition, timing and scheduler metrics —
   the equivalent of the paper artifact's benchmark driver.

     dune exec bin/nowa_run.exe -- --bench fib --runtime nowa -w 4 --runs 5
     dune exec bin/nowa_run.exe -- --list *)

open Cmdliner

let sizes =
  [
    ("test", Nowa_kernels.Registry.Test);
    ("small", Nowa_kernels.Registry.Small);
    ("medium", Nowa_kernels.Registry.Medium);
    ("large", Nowa_kernels.Registry.Large);
  ]

let list_benchmarks () =
  print_endline "benchmarks (Table I):";
  List.iter
    (fun name ->
      let inst = Nowa_kernels.Registry.find Nowa_kernels.Registry.Medium name in
      Printf.printf "  %-10s default input (medium): %s\n" name
        inst.Nowa_kernels.Registry.input_desc)
    Nowa_kernels.Registry.names;
  print_endline "";
  print_endline "runtimes:";
  List.iter
    (fun (module R : Nowa.RUNTIME) ->
      Printf.printf "  %-12s %s\n" R.name R.description)
    Nowa.Presets.all;
  Printf.printf "  %-12s %s\n" "serial" "serial elision (the T_s baseline)"

let resolve_runtime name : (module Nowa.RUNTIME) =
  if String.equal name "serial" then (module Nowa_runtime.Serial_runtime)
  else
    match Nowa.Presets.find name with
    | r -> r
    | exception Not_found ->
      Printf.eprintf "unknown runtime %S (try --list)\n" name;
      exit 1

let trace_capacity = 65_536

module W = Nowa_dag.Wsim
module Convoy = Nowa_dag.Convoy
module Causal = Nowa_dag.Causal

(* --ledger / --causal: instead of running the benchmark live, record its
   fork/join DAG (serial instrumented run), replay it through the
   discrete-event simulator under [model_name] at [workers] virtual
   workers, and print the causal profile: the exact time ledger, the
   per-resource contention table, detected lock convoys and — with
   --causal — the what-if sensitivity ranking.  The profile is also
   published to the metrics registry, so --metrics-addr / --metrics-out
   expose it as nowa_wsim_* gauges. *)
let sim_profile ~inst ~bench ~workers ~model_name ~causal ~trace =
  let cm =
    match Nowa_dag.Cost_model.find model_name with
    | m -> m
    | exception Not_found ->
      Printf.eprintf "unknown cost model %S (one of: %s)\n" model_name
        (String.concat ", "
           (List.map
              (fun m -> m.Nowa_dag.Cost_model.cname)
              Nowa_dag.Cost_model.all));
      exit 1
  in
  Printf.printf "%s (%s): recording DAG (serial instrumented run)...\n%!"
    bench inst.Nowa_kernels.Registry.input_desc;
  let thunk =
    inst.Nowa_kernels.Registry.make_thunk (module Nowa_dag.Recorder)
  in
  let dag, _ = Nowa_dag.Recorder.record thunk in
  ignore (Nowa_dag.Dag.clamp_work dag);
  let tr =
    match trace with
    | None -> None
    | Some _ ->
      Some
        (Nowa.Trace.create ~clock:Nowa.Trace.Virtual ~workers
           ~capacity:trace_capacity ())
  in
  let r = W.simulate ?trace:tr ~detail:true cm ~workers dag in
  Printf.printf
    "wsim:%s, %d virtual workers: makespan %.3f ms, speedup %.2f, %d steals%s\n"
    cm.Nowa_dag.Cost_model.cname workers
    (r.W.makespan_ns /. 1e6)
    r.W.speedup r.W.steals
    (if r.W.truncated then " (TRUNCATED: ledger covers the partial horizon)"
     else "");
  Format.printf "%a@." W.pp_ledger r.W.ledger;
  Printf.printf "resources:\n";
  List.iter
    (fun (s : W.resource_stats) ->
      if s.W.acquisitions > 0 then
        Printf.printf
          "  %-8s %9d acq  %9d contended  wait %12.0f ns  hold %12.0f ns\n"
          (W.resource_class_name s.W.rclass)
          s.W.acquisitions s.W.contended s.W.wait_ns s.W.hold_ns)
    r.W.resources;
  let convoys = Convoy.detect r.W.acquisitions in
  if convoys = [] then
    Printf.printf "convoys: none (queue depth never reached 4)\n"
  else begin
    Printf.printf "convoys (>=4 workers queued on one resource):\n";
    List.iter (fun c -> Format.printf "  %a@." Convoy.pp c) convoys
  end;
  if causal then begin
    let knobs =
      Causal.model_knobs
      @
      match Causal.hottest_strand dag with
      | Some v -> [ Causal.Strand_work v ]
      | None -> []
    in
    let ranking = Causal.rank cm ~workers dag knobs in
    Printf.printf
      "what-if sensitivity (virtual speedup of zeroing each cost):\n";
    List.iter
      (fun (x : Causal.experiment) ->
        Printf.printf "  %-12s %+7.2f%%\n"
          (Causal.knob_name x.Causal.knob)
          x.Causal.zero_gain_pct)
      ranking
  end;
  Causal.publish r convoys;
  match (trace, tr) with
  | Some file, Some tr ->
    let counters = Convoy.counter_tracks r.W.acquisitions in
    (try
       Nowa.Perfetto.write_file
         ~process_name:
           (Printf.sprintf "wsim:%s:%s/%dw" cm.Nowa_dag.Cost_model.cname bench
              workers)
         ~counters file tr
     with Sys_error msg ->
       Printf.eprintf "trace: cannot write %s\n" msg;
       exit 1);
    Printf.printf
      "trace: wrote %s (%d queue-depth counter tracks; open in \
       ui.perfetto.dev)\n"
      file (List.length counters)
  | _ -> ()

let parse_idle_policy = function
  | "spin" -> Nowa.Config.Spin
  | "yield" -> Nowa.Config.Yield_after 512
  | "park" -> Nowa.Config.Park_after 512
  | s ->
    Printf.eprintf "unknown idle policy %S (spin|yield|park)\n" s;
    exit 1

(* --serve: instead of a Table I kernel, drive the sharded KV service
   with an open-loop YCSB workload (exponential inter-arrivals at
   --rate, zipf-skewed keys) and print per-op-class latency
   percentiles.  Composable with --runtime/-w/--idle-policy/
   --steal-sweep/--trace/--metrics-addr/--metrics-out. *)
let serve_run ~runtime ~workers ~idle_policy ~steal_sweep ~trace ~anatomy
    ~pools ~mix ~rate ~requests ~warmup ~records ~shards ~theta ~watchdog
    ~slo_us ~inject_wedge =
  let (module R : Nowa.RUNTIME) = resolve_runtime runtime in
  let mix =
    match Nowa_server.Workload.find_mix mix with
    | Some m -> m
    | None ->
      Printf.eprintf "unknown YCSB mix %S (one of: %s)\n" mix
        (String.concat ", "
           (List.map
              (fun (m : Nowa_server.Workload.mix) ->
                m.Nowa_server.Workload.mname)
              Nowa_server.Workload.mixes));
      exit 1
  in
  let spec =
    {
      (Nowa_server.Workload.default_spec ~mix) with
      Nowa_server.Workload.records;
      rate;
      warmup;
      requests;
      shards;
      theta;
    }
  in
  let conf =
    {
      (Nowa.Config.with_workers workers) with
      Nowa.Config.trace_capacity = (if trace = None then 0 else trace_capacity);
      idle_policy = parse_idle_policy idle_policy;
      steal_sweep = max 1 steal_sweep;
      watchdog_interval_ms = watchdog;
    }
  in
  (* --pools: carve a 1-worker injector micropool off the front (the
     root strand lives in the first pool, so the dispatch loop runs
     there) and serve requests from the rest, so no serve worker can
     steal the injection continuation (see lib/server/loadgen.ml). *)
  let serve_workers = max 1 (workers - 1) in
  let conf =
    if pools then
      {
        conf with
        Nowa.Config.pools =
          [
            Nowa.Config.pool "inject" ~workers:1;
            Nowa.Config.pool "serve" ~workers:serve_workers;
          ];
      }
    else conf
  in
  let slo_ns =
    if slo_us > 0.0 then Some (int_of_float (slo_us *. 1e3)) else None
  in
  (* SLO burn-rate as a watchdog verdict source: each monitor scan
     samples the cumulative serve-latency histogram and judges the
     multi-window burn.  1% error budget over the window set. *)
  (match slo_ns with
  | Some slo ->
    let br = Nowa.Obs.Burn_rate.create ~slo_ns:slo ~budget:0.01 () in
    Nowa.Health.register_source ~name:"slo" (fun () ->
        Nowa.Obs.Burn_rate.observe br Nowa_server.Serve_metrics.latency
          ~now_ns:(Nowa_util.Clock.now_ns ())
        |> List.map (fun (b : Nowa.Obs.Burn_rate.breach) ->
               Nowa.Health.Slo_burn
                 {
                   long_s = b.Nowa.Obs.Burn_rate.window.Nowa.Obs.Burn_rate.long_s;
                   short_s = b.window.Nowa.Obs.Burn_rate.short_s;
                   long_burn = b.long_burn;
                   short_burn = b.short_burn;
                 }))
  | None -> ());
  (* The KV convoy source is registered by the loadgen itself (it owns
     the store); here we only arm the optional wedge fault. *)
  (match inject_wedge with
  | Some spec -> (
    match String.split_on_char ':' spec with
    | [ s; ms ] -> (
      match (int_of_string_opt s, int_of_string_opt ms) with
      | Some shard, Some ms -> Nowa_server.Kv.inject_wedge ~shard ~ms
      | _ ->
        Printf.eprintf "bad --inject-wedge %S (SHARD:MS)\n" spec;
        exit 1)
    | [ s ] -> (
      match int_of_string_opt s with
      | Some shard -> Nowa_server.Kv.inject_wedge ~shard ~ms:200
      | None ->
        Printf.eprintf "bad --inject-wedge %S (SHARD:MS)\n" spec;
        exit 1)
    | _ ->
      Printf.eprintf "bad --inject-wedge %S (SHARD:MS)\n" spec;
      exit 1)
  | None -> ());
  let module L = Nowa_server.Loadgen.Make (R) in
  let report =
    L.run ~conf ~anatomy
      ?pools:(if pools then Some ("inject", "serve") else None)
      ?slo_ns spec
  in
  Nowa.Health.unregister_source ~name:"slo";
  Nowa_server.Loadgen.pp_report report;
  (match report.Nowa_server.Loadgen.anatomy with
  | None -> ()
  | Some a ->
    let json_path = Nowa_util.Artifacts.path "serve-anatomy.json" in
    let oc = open_out json_path in
    output_string oc (Nowa_server.Anatomy.json a);
    output_char oc '\n';
    close_out oc;
    let tail_path = Nowa_util.Artifacts.path "serve-tail.trace.json" in
    Nowa_server.Anatomy.write_tail_perfetto tail_path a;
    Printf.printf
      "anatomy: wrote %s and %s (%d tail spans; conservation violations=%d)\n"
      json_path tail_path
      (List.length a.Nowa_server.Anatomy.tail)
      a.Nowa_server.Anatomy.violations);
  match trace with
  | None -> ()
  | Some file -> (
    match R.last_trace () with
    | Some tr ->
      (try
         let worker_label =
           if pools then fun w ->
             if w = 0 then "inject/0"
             else Printf.sprintf "serve/%d" (w - 1)
           else Nowa.Perfetto.default_worker_label
         in
         Nowa.Perfetto.write_file ~worker_label
           ~process_name:
             (Printf.sprintf "serve:%s:%s/%dw" R.name
                mix.Nowa_server.Workload.mname workers)
           file tr
       with Sys_error msg ->
         Printf.eprintf "trace: cannot write %s\n" msg;
         exit 1);
      Printf.printf
        "trace: wrote %s (%d events kept, %d overwritten; open in \
         ui.perfetto.dev)\n"
        file
        (Array.length (Nowa.Trace.events tr))
        (Nowa.Trace.dropped tr)
    | None ->
      Printf.eprintf "trace: runtime %S produced no trace (serial?)\n" R.name)

let main list bench runtime workers runs size madvise idle_policy steal_sweep
    trace metrics_addr metrics_out verbose model ledger causal serve anatomy
    pools mix rate requests warmup records shards theta watchdog slo_us
    inject_stall inject_wedge dump_health =
  if list then list_benchmarks ()
  else begin
    (* Bare output filenames land in the gitignored artifacts/ dir. *)
    let trace = Option.map Nowa_util.Artifacts.path trace in
    (* Start the exposition endpoint before any run so the registry can
       be scraped while the benchmark executes.  /healthz and /statusz
       route to the watchdog's latest verdicts. *)
    let server =
      match metrics_addr with
      | None -> None
      | Some addr -> (
        match
          Nowa.Obs.Server.start ~healthz:Nowa.Health.healthz
            ~statusz:Nowa.Health.statusz ~addr ()
        with
        | Ok s ->
          Printf.printf "metrics: serving Prometheus text on port %d\n%!"
            (Nowa.Obs.Server.port s);
          Some s
        | Error msg ->
          Printf.eprintf "metrics: %s\n" msg;
          exit 1)
    in
    (match inject_stall with
    | None -> ()
    | Some spec -> (
      match Nowa.Health.Inject.parse_stall spec with
      | Some (worker, ms) -> Nowa.Health.Inject.stall ~worker ~ms
      | None ->
        Printf.eprintf "bad --inject-stall %S (WORKER:MS)\n" spec;
        exit 1));
    if serve then
      serve_run ~runtime ~workers ~idle_policy ~steal_sweep ~trace ~anatomy
        ~pools ~mix ~rate ~requests ~warmup ~records ~shards ~theta ~watchdog
        ~slo_us ~inject_wedge
    else begin
    let size =
      match List.assoc_opt size sizes with
      | Some s -> s
      | None ->
        Printf.eprintf "unknown size %S (test|small|medium|large)\n" size;
        exit 1
    in
    let inst =
      match Nowa_kernels.Registry.find size bench with
      | i -> i
      | exception Not_found ->
        Printf.eprintf "unknown benchmark %S (try --list)\n" bench;
        exit 1
    in
    if ledger || causal then
      sim_profile ~inst ~bench ~workers ~model_name:model ~causal ~trace
    else begin
    let (module R : Nowa.RUNTIME) = resolve_runtime runtime in
    let conf =
      {
        (Nowa.Config.with_workers workers) with
        Nowa.Config.madvise;
        trace_capacity = (if trace = None then 0 else trace_capacity);
        idle_policy = parse_idle_policy idle_policy;
        steal_sweep = max 1 steal_sweep;
        watchdog_interval_ms = watchdog;
      }
    in
    let reference = Nowa_kernels.Registry.reference size bench in
    let thunk = inst.Nowa_kernels.Registry.make_thunk (module R) in
    Printf.printf "%s (%s) on %s, %d workers, %d runs%s\n" bench
      inst.Nowa_kernels.Registry.input_desc R.name workers runs
      (if madvise then ", madvise on" else "");
    let times = ref [] in
    for run = 1 to runs do
      (* Time inside [run] so that worker start-up is excluded, as the
         paper does ("measurements performed from within the
         applications"). *)
      let elapsed, fp =
        R.run ~conf (fun () -> Nowa_util.Clock.time_it thunk)
      in
      let ok = Nowa_kernels.Registry.matches inst reference fp in
      if not ok then begin
        Printf.eprintf "run %d: WRONG RESULT (%.9g vs %.9g)\n" run fp reference;
        exit 1
      end;
      times := elapsed :: !times;
      if verbose then Printf.printf "  run %d: %.4f s\n" run elapsed
    done;
    let open Nowa_util.Stats in
    Printf.printf "time: mean %.4f s, median %.4f s, sd %.4f s, min %.4f s\n"
      (mean !times) (median !times) (stddev !times) (minimum !times);
    (match R.last_metrics () with
    | Some m when verbose ->
      Format.printf "%a@." Nowa.Metrics.pp m
    | _ -> ());
    let summary =
      match trace with
      | None -> None
      | Some file -> (
        (* The rings hold the last run's events (each run overwrites). *)
        match R.last_trace () with
        | Some tr ->
          (try
             Nowa.Perfetto.write_file
               ~process_name:(Printf.sprintf "%s:%s/%dw" R.name bench workers)
               file tr
           with Sys_error msg ->
             Printf.eprintf "trace: cannot write %s\n" msg;
             exit 1);
          Printf.printf
            "trace: wrote %s (%d events kept, %d overwritten; open in \
             chrome://tracing or ui.perfetto.dev)\n"
            file
            (Array.length (Nowa.Trace.events tr))
            (Nowa.Trace.dropped tr);
          let s = Nowa.Trace_analysis.summarize tr in
          Format.printf "%a@." Nowa.Trace_analysis.pp s;
          Some s
        | None ->
          Printf.eprintf "trace: runtime %S produced no trace (serial?)\n"
            R.name;
          None)
    in
    if verbose then begin
      (* One-line live-observability digest: scheduler utilization (from
         the trace when recorded), steal rate of the last run, and the
         coordination-cost tails from the sync histograms. *)
      let util =
        match summary with
        | Some s ->
          Printf.sprintf "%.1f%%" (100.0 *. s.Nowa.Trace_analysis.utilization)
        | None -> "n/a"
      in
      let steals_per_s =
        match R.last_metrics () with
        | Some m when m.Nowa.Metrics.elapsed_s > 0.0 ->
          Printf.sprintf "%.0f"
            (float_of_int
               (Nowa.Metrics.total m (fun w -> w.Nowa.Metrics.steals))
            /. m.Nowa.Metrics.elapsed_s)
        | _ -> "n/a"
      in
      let p99 h =
        let v = Nowa.Obs.Histogram.percentile h 0.99 in
        if Float.is_nan v then "n/a" else Printf.sprintf "%.0f" v
      in
      Printf.printf
        "obs: utilization=%s steals/s=%s wfc-rmw-retry-p99=%s \
         frame-lock-spin-p99=%s\n"
        util steals_per_s
        (p99 Nowa_sync.Sync_metrics.wfc_rmw_retries)
        (p99 Nowa_sync.Sync_metrics.frame_lock_spins)
    end
    end
    end;
    if dump_health then begin
      let dir = Nowa.Health.dump_now ~reason:"manual" in
      Printf.printf "health: wrote postmortem bundle to %s\n" dir
    end;
    (match metrics_out with
    | None -> ()
    | Some "-" -> print_string (Nowa.Obs.Expose.to_prometheus ())
    | Some file ->
      let file = Nowa_util.Artifacts.path file in
      (try Nowa.Obs.Expose.write_file file
       with Sys_error msg ->
         Printf.eprintf "metrics: cannot write %s\n" msg;
         exit 1);
      Printf.printf "metrics: wrote Prometheus dump to %s\n" file);
    Option.iter Nowa.Obs.Server.stop server
  end

let cmd =
  let list = Arg.(value & flag & info [ "list"; "l" ] ~doc:"List benchmarks and runtimes.") in
  let bench =
    Arg.(value & opt string "fib" & info [ "bench"; "b" ] ~docv:"NAME" ~doc:"Benchmark name.")
  in
  let runtime =
    Arg.(value & opt string "nowa" & info [ "runtime"; "r" ] ~docv:"NAME" ~doc:"Runtime preset or 'serial'.")
  in
  let workers =
    Arg.(
      value
      & opt int (Nowa_util.Cpu.default_workers ())
      & info [ "workers"; "w" ] ~docv:"W" ~doc:"Worker count.")
  in
  let runs = Arg.(value & opt int 3 & info [ "runs"; "n" ] ~docv:"N" ~doc:"Repetitions.") in
  let size =
    Arg.(value & opt string "small" & info [ "size"; "s" ] ~docv:"SIZE" ~doc:"Input scale: test|small|medium|large.")
  in
  let madvise =
    Arg.(value & flag & info [ "madvise" ] ~doc:"Enable the simulated madvise() stack-page release.")
  in
  let idle_policy =
    Arg.(
      value
      & opt string "park"
      & info [ "idle-policy" ] ~docv:"POLICY"
          ~doc:
            "What an out-of-work worker does: $(b,spin) (busy-wait with \
             backoff, burns a core), $(b,yield) (also yields the OS \
             timeslice), or $(b,park) (the default: block on the worker's \
             condition variable behind the wait-free sleeper registry). \
             Composable with $(b,--trace) (Park/Unpark slices), \
             $(b,--metrics-out) (nowa_scheduler_parks_total etc.) and \
             $(b,--ledger).")
  in
  let steal_sweep =
    Arg.(
      value
      & opt int (Nowa.Config.default ()).Nowa.Config.steal_sweep
      & info [ "steal-sweep" ] ~docv:"N"
          ~doc:
            "Victims probed per steal round (batched steal width on the \
             child-stealing and central baselines).")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Record per-worker scheduler events during the (last) run and \
             write a Perfetto/chrome://tracing JSON timeline to $(docv), \
             plus a strand-level summary on stdout.")
  in
  let metrics_addr =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-addr" ] ~docv:"[HOST:]PORT"
          ~doc:
            "Serve live Prometheus text-format metrics on $(docv) for the \
             duration of the run (port 0 picks an ephemeral port). \
             Composable with $(b,--trace).")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:
            "Write a final Prometheus text-format dump of the metrics \
             registry to $(docv) at exit ('-' for stdout).")
  in
  let verbose = Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Per-run times, metrics and a one-line obs summary.") in
  let model =
    Arg.(
      value
      & opt string "nowa"
      & info [ "model" ] ~docv:"NAME"
          ~doc:
            "Cost model for $(b,--ledger)/$(b,--causal) simulation \
             (nowa|nowa-the|fibril|cilkplus|tbb|lomp-untied|lomp-tied|gomp).")
  in
  let ledger =
    Arg.(
      value & flag
      & info [ "ledger" ]
          ~doc:
            "Instead of running live: record the benchmark's DAG, replay it \
             on $(b,-w) virtual workers under $(b,--model), and print the \
             exact per-worker time ledger, resource contention and detected \
             lock convoys.  With $(b,--trace), the virtual schedule plus \
             queue-depth counter tracks are written as Perfetto JSON.")
  in
  let causal =
    Arg.(
      value & flag
      & info [ "causal" ]
          ~doc:
            "Everything $(b,--ledger) prints, plus what-if virtual-speedup \
             experiments: each cost-model component (and the hottest strand) \
             is scaled and the DAG re-simulated, ranking which overhead \
             limits the makespan.")
  in
  let serve =
    Arg.(
      value & flag
      & info [ "serve" ]
          ~doc:
            "Instead of a Table I kernel: drive the sharded in-memory KV \
             service with an open-loop YCSB workload (exponential \
             inter-arrivals at $(b,--rate), zipf-skewed keys, every request \
             a runtime task) and print per-op-class latency percentiles.  \
             Composable with $(b,--runtime), $(b,-w), $(b,--idle-policy), \
             $(b,--steal-sweep), $(b,--trace), $(b,--metrics-addr) and \
             $(b,--metrics-out).")
  in
  let anatomy =
    Arg.(
      value & flag
      & info [ "anatomy" ]
          ~doc:
            "With $(b,--serve): attach a request-scoped span ledger \
             (sched_wait/mailbox_wait/loan_defer/handoff_wait/exec/reply \
             per request, conservation-checked against end-to-end \
             latency), print the per-phase quantile table, and write \
             artifacts/serve-anatomy.json plus a Perfetto timeline of \
             the slowest sampled requests to \
             artifacts/serve-tail.trace.json.")
  in
  let pools =
    Arg.(
      value & flag
      & info [ "pools" ]
          ~doc:
            "With $(b,--serve): run on a two-micropool topology — a \
             dedicated 1-worker $(i,inject) pool pinning the open-loop \
             dispatch loop, and a $(i,serve) pool (the remaining workers) \
             that requests are routed to with spawn_on.  Closes the \
             injection self-throttle of continuation-stealing engines: \
             serve workers can no longer steal the dispatch continuation.")
  in
  let mix =
    Arg.(
      value & opt string "A"
      & info [ "mix" ] ~docv:"MIX"
          ~doc:"YCSB workload mix for $(b,--serve): A|B|C|D|E|F.")
  in
  let rate =
    Arg.(
      value & opt float 5_000.0
      & info [ "rate" ] ~docv:"RPS"
          ~doc:"Offered open-loop arrival rate (requests/s) for $(b,--serve).")
  in
  let requests =
    Arg.(
      value & opt int 5_000
      & info [ "requests" ] ~docv:"N"
          ~doc:"Measured requests per $(b,--serve) run (after warm-up).")
  in
  let warmup =
    Arg.(
      value & opt int 500
      & info [ "warmup" ] ~docv:"N"
          ~doc:"Warm-up requests excluded from $(b,--serve) statistics.")
  in
  let records =
    Arg.(
      value & opt int 2_000
      & info [ "records" ] ~docv:"N"
          ~doc:"Records preloaded into the store for $(b,--serve).")
  in
  let shards =
    Arg.(
      value & opt int 16
      & info [ "shards" ] ~docv:"N"
          ~doc:"Hash shards in the KV store for $(b,--serve).")
  in
  let theta =
    Arg.(
      value & opt float 0.99
      & info [ "theta" ] ~docv:"T"
          ~doc:"Zipfian skew parameter (0 < $(docv) < 1) for $(b,--serve).")
  in
  let watchdog =
    Arg.(
      value & opt int 0
      & info [ "watchdog" ] ~docv:"MS"
          ~doc:
            "Run the health watchdog: a monitor thread samples per-worker \
             heartbeats and sleeper state every $(docv) milliseconds, \
             distinguishes parked-idle from stalled workers, detects \
             global starvation, KV combiner convoys and SLO burn, and \
             dumps a postmortem bundle to artifacts/ on any verdict.  \
             0 (the default) disables it.")
  in
  let slo_us =
    Arg.(
      value & opt float 0.0
      & info [ "slo" ] ~docv:"US"
          ~doc:
            "With $(b,--serve): per-request latency SLO in microseconds.  \
             Tags requests completing past it (deadline_misses in the \
             report, nowa_serve_deadline_misses_total in the registry) \
             and, with $(b,--watchdog), feeds the multi-window burn-rate \
             evaluator over the serve latency histogram.  0 disables.")
  in
  let inject_stall =
    Arg.(
      value & opt (some string) None
      & info [ "inject-stall" ] ~docv:"WORKER:MS"
          ~doc:
            "Fault injection: the next heartbeat of $(b,WORKER) spins \
             for $(b,MS) milliseconds (default 200), manufacturing the \
             stall the watchdog must detect.  Test/CI only.")
  in
  let inject_wedge =
    Arg.(
      value & opt (some string) None
      & info [ "inject-wedge" ] ~docv:"SHARD:MS"
          ~doc:
            "With $(b,--serve): the next KV combiner to claim $(b,SHARD) \
             spins for $(b,MS) milliseconds (default 200) while holding \
             the combining flag, manufacturing the convoy the watchdog \
             must detect.  Test/CI only.")
  in
  let dump_health =
    Arg.(
      value & flag
      & info [ "dump-health" ]
          ~doc:
            "Write a postmortem bundle (watchdog verdict table, metrics \
             snapshot, frozen trace window) to artifacts/ after the run, \
             even without an anomaly verdict.")
  in
  Cmd.v
    (Cmd.info "nowa-run" ~doc:"Run Nowa benchmarks on any runtime preset")
    Term.(const main $ list $ bench $ runtime $ workers $ runs $ size $ madvise $ idle_policy $ steal_sweep $ trace $ metrics_addr $ metrics_out $ verbose $ model $ ledger $ causal $ serve $ anatomy $ pools $ mix $ rate $ requests $ warmup $ records $ shards $ theta $ watchdog $ slo_us $ inject_stall $ inject_wedge $ dump_health)

let () = exit (Cmd.eval cmd)
