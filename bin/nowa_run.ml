(* nowa-run: run any Table I benchmark on any runtime preset (or its
   serial elision), with repetition, timing and scheduler metrics —
   the equivalent of the paper artifact's benchmark driver.

     dune exec bin/nowa_run.exe -- --bench fib --runtime nowa -w 4 --runs 5
     dune exec bin/nowa_run.exe -- --list *)

open Cmdliner

let sizes =
  [
    ("test", Nowa_kernels.Registry.Test);
    ("small", Nowa_kernels.Registry.Small);
    ("medium", Nowa_kernels.Registry.Medium);
    ("large", Nowa_kernels.Registry.Large);
  ]

let list_benchmarks () =
  print_endline "benchmarks (Table I):";
  List.iter
    (fun name ->
      let inst = Nowa_kernels.Registry.find Nowa_kernels.Registry.Medium name in
      Printf.printf "  %-10s default input (medium): %s\n" name
        inst.Nowa_kernels.Registry.input_desc)
    Nowa_kernels.Registry.names;
  print_endline "";
  print_endline "runtimes:";
  List.iter
    (fun (module R : Nowa.RUNTIME) ->
      Printf.printf "  %-12s %s\n" R.name R.description)
    Nowa.Presets.all;
  Printf.printf "  %-12s %s\n" "serial" "serial elision (the T_s baseline)"

let resolve_runtime name : (module Nowa.RUNTIME) =
  if String.equal name "serial" then (module Nowa_runtime.Serial_runtime)
  else
    match Nowa.Presets.find name with
    | r -> r
    | exception Not_found ->
      Printf.eprintf "unknown runtime %S (try --list)\n" name;
      exit 1

let trace_capacity = 65_536

let main list bench runtime workers runs size madvise trace verbose =
  if list then list_benchmarks ()
  else begin
    let size =
      match List.assoc_opt size sizes with
      | Some s -> s
      | None ->
        Printf.eprintf "unknown size %S (test|small|medium|large)\n" size;
        exit 1
    in
    let inst =
      match Nowa_kernels.Registry.find size bench with
      | i -> i
      | exception Not_found ->
        Printf.eprintf "unknown benchmark %S (try --list)\n" bench;
        exit 1
    in
    let (module R : Nowa.RUNTIME) = resolve_runtime runtime in
    let conf =
      {
        (Nowa.Config.with_workers workers) with
        Nowa.Config.madvise;
        trace_capacity = (if trace = None then 0 else trace_capacity);
      }
    in
    let reference = Nowa_kernels.Registry.reference size bench in
    let thunk = inst.Nowa_kernels.Registry.make_thunk (module R) in
    Printf.printf "%s (%s) on %s, %d workers, %d runs%s\n" bench
      inst.Nowa_kernels.Registry.input_desc R.name workers runs
      (if madvise then ", madvise on" else "");
    let times = ref [] in
    for run = 1 to runs do
      (* Time inside [run] so that worker start-up is excluded, as the
         paper does ("measurements performed from within the
         applications"). *)
      let elapsed, fp =
        R.run ~conf (fun () -> Nowa_util.Clock.time_it thunk)
      in
      let ok = Nowa_kernels.Registry.matches inst reference fp in
      if not ok then begin
        Printf.eprintf "run %d: WRONG RESULT (%.9g vs %.9g)\n" run fp reference;
        exit 1
      end;
      times := elapsed :: !times;
      if verbose then Printf.printf "  run %d: %.4f s\n" run elapsed
    done;
    let open Nowa_util.Stats in
    Printf.printf "time: mean %.4f s, median %.4f s, sd %.4f s, min %.4f s\n"
      (mean !times) (median !times) (stddev !times) (minimum !times);
    (match R.last_metrics () with
    | Some m when verbose ->
      Format.printf "%a@." Nowa.Metrics.pp m
    | _ -> ());
    match trace with
    | None -> ()
    | Some file -> (
      (* The rings hold the last run's events (each run overwrites). *)
      match R.last_trace () with
      | Some tr ->
        (try
           Nowa.Perfetto.write_file
             ~process_name:(Printf.sprintf "%s:%s/%dw" R.name bench workers)
             file tr
         with Sys_error msg ->
           Printf.eprintf "trace: cannot write %s\n" msg;
           exit 1);
        Printf.printf
          "trace: wrote %s (%d events kept, %d overwritten; open in \
           chrome://tracing or ui.perfetto.dev)\n"
          file
          (Array.length (Nowa.Trace.events tr))
          (Nowa.Trace.dropped tr);
        Format.printf "%a@." Nowa.Trace_analysis.pp
          (Nowa.Trace_analysis.summarize tr)
      | None ->
        Printf.eprintf "trace: runtime %S produced no trace (serial?)\n"
          R.name)
  end

let cmd =
  let list = Arg.(value & flag & info [ "list"; "l" ] ~doc:"List benchmarks and runtimes.") in
  let bench =
    Arg.(value & opt string "fib" & info [ "bench"; "b" ] ~docv:"NAME" ~doc:"Benchmark name.")
  in
  let runtime =
    Arg.(value & opt string "nowa" & info [ "runtime"; "r" ] ~docv:"NAME" ~doc:"Runtime preset or 'serial'.")
  in
  let workers =
    Arg.(
      value
      & opt int (Nowa_util.Cpu.default_workers ())
      & info [ "workers"; "w" ] ~docv:"W" ~doc:"Worker count.")
  in
  let runs = Arg.(value & opt int 3 & info [ "runs"; "n" ] ~docv:"N" ~doc:"Repetitions.") in
  let size =
    Arg.(value & opt string "small" & info [ "size"; "s" ] ~docv:"SIZE" ~doc:"Input scale: test|small|medium|large.")
  in
  let madvise =
    Arg.(value & flag & info [ "madvise" ] ~doc:"Enable the simulated madvise() stack-page release.")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Record per-worker scheduler events during the (last) run and \
             write a Perfetto/chrome://tracing JSON timeline to $(docv), \
             plus a strand-level summary on stdout.")
  in
  let verbose = Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Per-run times and metrics.") in
  Cmd.v
    (Cmd.info "nowa-run" ~doc:"Run Nowa benchmarks on any runtime preset")
    Term.(const main $ list $ bench $ runtime $ workers $ runs $ size $ madvise $ trace $ verbose)

let () = exit (Cmd.eval cmd)
