(* Exhaustive model-checking battery for CI: every spec in
   Nowa_mcheck.Specs run under the DPOR explorer against its expected
   verdict, with a JSON report and any violating schedules written out
   as artifacts.

     mcheck_run [--budget N] [--steps N] [--out FILE] [--violations DIR]

   Exit status is non-zero iff any spec's verdict differs from its
   expectation — a protocol we believe verified reporting a violation
   (or the reverse) fails the build, and the offending schedule lands in
   the artifacts for replay with Mcheck.run_schedule. *)

module M = Nowa_mcheck.Mcheck
module S = Nowa_mcheck.Specs

type expect =
  | Verified (* Ok and complete: an exhaustive proof at these bounds *)
  | Safe (* Ok; completeness not required (spin-loop specs truncate) *)
  | Violates (* the checker must exhibit a failing schedule *)

let battery =
  [
    ("naive_counter", Violates, S.naive_counter_spec ~children:1);
    ("wait_free_counter", Verified, S.wait_free_counter_spec ~children:1);
    ("lock_counter", Safe, S.lock_counter_spec ~children:1);
    ("chase_lev_2_1_1", Verified, S.chase_lev_spec ~pushes:2 ~pops:1 ~thieves:1);
    ("chase_lev_2_2_1", Verified, S.chase_lev_spec ~pushes:2 ~pops:2 ~thieves:1);
    ("the_queue_2_1_1", Safe, S.the_queue_spec ~pushes:2 ~pops:1 ~thieves:1);
    ("sleeper_1w_1t", Verified, S.sleeper_spec ~variant:`Good ~workers:1 ~tasks:1);
    ("sleeper_2w_1t", Verified, S.sleeper_spec ~variant:`Good ~workers:2 ~tasks:1);
    ( "sleeper_check_before_announce",
      Violates,
      S.sleeper_spec ~variant:`Check_before_announce ~workers:1 ~tasks:1 );
    ("sleeper_wake_cancel_2", Verified, S.sleeper_wake_cancel_spec ~wakers:2);
    ("sleeper_shutdown_2w", Verified, S.sleeper_shutdown_spec ~workers:2);
    ( "chase_lev_batch",
      Verified,
      S.chase_lev_batch_spec ~pushes:3 ~pops:1 ~batch:2 ~thieves:1 );
    ( "chase_lev_batch_2thieves",
      Verified,
      S.chase_lev_batch_spec ~pushes:2 ~pops:0 ~batch:2 ~thieves:2 );
    ( "the_queue_batch",
      Verified,
      S.the_queue_batch_spec ~pushes:3 ~pops:1 ~batch:2 ~thieves:1 );
    ("abp_batch", Verified, S.abp_batch_spec ~pushes:3 ~pops:1 ~batch:2 ~thieves:1);
    ( "locked_batch",
      Verified,
      S.locked_batch_spec ~pushes:3 ~pops:1 ~batch:2 ~thieves:1 );
    ("snzi_2", Verified, S.snzi_spec ~threads:2);
    ("snzi_batch", Verified, S.snzi_batch_spec ~threads:2 ~batch:2);
    ("barrier_sense_2x2", Verified, S.barrier_spec ~variant:`Sense ~n:2 ~rounds:2);
    ( "barrier_sense_reordered_2x2",
      Violates,
      S.barrier_spec ~variant:`Sense_reordered ~n:2 ~rounds:2 );
    ("barrier_epoch_2x2", Verified, S.barrier_spec ~variant:`Epoch ~n:2 ~rounds:2);
    ("barrier_epoch_3x2", Verified, S.barrier_spec ~variant:`Epoch ~n:3 ~rounds:2);
    ("kv_combiner_2", Verified, S.kv_combiner_spec ~variant:`Good ~pushers:2);
    ( "kv_combiner_no_recheck",
      Violates,
      S.kv_combiner_spec ~variant:`No_recheck ~pushers:2 );
    ("kv_handoff", Verified, S.kv_handoff_spec ~variant:`Good);
    ( "kv_handoff_no_defer",
      Violates,
      S.kv_handoff_spec ~variant:`No_defer );
    ("kv_parked_retry", Verified, S.kv_parked_retry_spec ~variant:`Good);
    ( "kv_parked_retry_no_loop",
      Violates,
      S.kv_parked_retry_spec ~variant:`No_recheck_loop );
    ("watchdog_park", Verified, S.watchdog_park_spec ~variant:`Good ~scans:3);
    ( "watchdog_park_bit_only",
      Violates,
      S.watchdog_park_spec ~variant:`No_waiting_flag ~scans:3 );
    ("spillover", Verified, S.spillover_spec ~variant:`Good);
    ( "spillover_no_sweep",
      Violates,
      S.spillover_spec ~variant:`No_final_sweep );
  ]

let () =
  let budget = ref 500_000 in
  let steps = ref 400 in
  let out = ref "mcheck-report.json" in
  let violations_dir = ref "mcheck-violations" in
  Arg.parse
    [
      ("--budget", Arg.Set_int budget, "execution budget per spec (default 500000)");
      ("--steps", Arg.Set_int steps, "step bound per execution (default 400)");
      ("--out", Arg.Set_string out, "JSON report path");
      ( "--violations",
        Arg.Set_string violations_dir,
        "directory for violating-schedule artifacts" );
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "mcheck_run: exhaustive DPOR battery over the coordination specs";
  let failures = ref 0 in
  let rows =
    List.map
      (fun (name, expect, spec) ->
        let t0 = Unix.gettimeofday () in
        let result = M.explore ~max_executions:!budget ~max_steps:!steps spec in
        let dt = Unix.gettimeofday () -. t0 in
        let pass, detail =
          match (expect, result) with
          | Verified, M.Ok o when o.M.complete -> (true, "verified")
          | Verified, M.Ok _ -> (false, "incomplete: raise --budget/--steps")
          | Safe, M.Ok _ -> (true, "no violation")
          | (Verified | Safe), M.Violation _ -> (false, "unexpected violation")
          | Violates, M.Violation _ -> (true, "violation exhibited")
          | Violates, M.Ok _ -> (false, "expected violation not found")
        in
        if not pass then incr failures;
        let counts, schedule =
          match result with
          | M.Ok o ->
            ( Printf.sprintf
                {|"executions":%d,"truncated":%d,"blocked":%d,"complete":%b|}
                o.M.executions o.M.truncated o.M.blocked o.M.complete,
              None )
          | M.Violation { schedule; message } ->
            ( Printf.sprintf {|"message":%S|} message,
              Some (String.concat ";" (List.map string_of_int schedule)) )
        in
        (match (result, schedule) with
        | M.Violation _, Some sched ->
          if not (Sys.file_exists !violations_dir) then
            Sys.mkdir !violations_dir 0o755;
          let oc = open_out (Filename.concat !violations_dir (name ^ ".schedule")) in
          Printf.fprintf oc "%s\n" sched;
          close_out oc
        | _ -> ());
        Printf.printf "%-32s %-28s %6.2fs%s\n%!" name
          (if pass then detail else "FAIL: " ^ detail)
          dt
          (match schedule with Some s -> "  [" ^ s ^ "]" | None -> "");
        Printf.sprintf {|{"spec":%S,"pass":%b,"detail":%S,%s%s}|} name pass detail
          counts
          (match schedule with
          | Some s -> Printf.sprintf {|,"schedule":%S|} s
          | None -> ""))
      battery
  in
  let oc = open_out !out in
  Printf.fprintf oc "[\n%s\n]\n" (String.concat ",\n" rows);
  close_out oc;
  Printf.printf "report: %s (%d/%d specs as expected)\n%!" !out
    (List.length battery - !failures)
    (List.length battery);
  if !failures > 0 then exit 1
